#ifndef QBE_TEXT_INVERTED_INDEX_H_
#define QBE_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qbe {

/// Positional full-text index over the cells of one text column — the
/// equivalent of the per-column FTS index the paper builds in SQL Server
/// (§3.1). Postings record (row, token position) so phrase queries
/// ("tokens appear consecutively", Definition 2) are answered exactly.
class InvertedIndex {
 public:
  struct Posting {
    uint32_t row;
    uint32_t position;
  };

  InvertedIndex() = default;

  /// Builds the index over `cells`; cell i belongs to row i.
  void Build(const std::vector<std::string>& cells);

  /// Rows whose cell contains the phrase (already-tokenized), sorted
  /// ascending, deduplicated. An empty phrase matches every indexed row.
  std::vector<uint32_t> MatchPhrase(
      const std::vector<std::string>& phrase) const;

  /// Rows whose cell contains *every* phrase in `phrases` (conjunction of
  /// CONTAINS predicates on the same column).
  std::vector<uint32_t> MatchAllPhrases(
      const std::vector<std::vector<std::string>>& phrases) const;

  /// True iff at least one row matches the phrase; cheaper than MatchPhrase
  /// when only existence is needed.
  bool AnyMatch(const std::vector<std::string>& phrase) const;

  /// Number of rows containing `token` (0 if absent). Used as a selectivity
  /// hint by the executor.
  size_t TokenRowCount(std::string_view token) const;

  size_t num_rows() const { return num_rows_; }

  /// Approximate heap footprint, for the harness's memory accounting.
  size_t MemoryBytes() const;

 private:
  const std::vector<Posting>* Lookup(std::string_view token) const;

  std::unordered_map<std::string, std::vector<Posting>> postings_;
  size_t num_rows_ = 0;
};

}  // namespace qbe

#endif  // QBE_TEXT_INVERTED_INDEX_H_
