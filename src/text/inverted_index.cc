#include "text/inverted_index.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace qbe {

void InvertedIndex::Build(const std::vector<std::string>& cells) {
  postings_.clear();
  num_rows_ = cells.size();
  for (uint32_t row = 0; row < cells.size(); ++row) {
    std::vector<std::string> tokens = Tokenize(cells[row]);
    for (uint32_t pos = 0; pos < tokens.size(); ++pos) {
      postings_[tokens[pos]].push_back(Posting{row, pos});
    }
  }
  // Postings are appended in (row, position) order by construction, so each
  // list is already sorted; no extra pass needed.
}

const std::vector<InvertedIndex::Posting>* InvertedIndex::Lookup(
    std::string_view token) const {
  auto it = postings_.find(std::string(token));
  if (it == postings_.end()) return nullptr;
  return &it->second;
}

std::vector<uint32_t> InvertedIndex::MatchPhrase(
    const std::vector<std::string>& phrase) const {
  std::vector<uint32_t> rows;
  if (phrase.empty()) {
    rows.resize(num_rows_);
    for (uint32_t r = 0; r < num_rows_; ++r) rows[r] = r;
    return rows;
  }
  const std::vector<Posting>* first = Lookup(phrase[0]);
  if (first == nullptr) return rows;
  // Resolve each occurrence of the first token by probing the remaining
  // tokens' postings for the expected (row, position + k) slots.
  std::vector<const std::vector<Posting>*> rest(phrase.size(), nullptr);
  for (size_t k = 1; k < phrase.size(); ++k) {
    rest[k] = Lookup(phrase[k]);
    if (rest[k] == nullptr) return rows;
  }
  for (const Posting& p : *first) {
    if (!rows.empty() && rows.back() == p.row) continue;  // row already in
    bool ok = true;
    for (size_t k = 1; k < phrase.size() && ok; ++k) {
      const Posting want{p.row, p.position + static_cast<uint32_t>(k)};
      const std::vector<Posting>& list = *rest[k];
      auto it = std::lower_bound(list.begin(), list.end(), want,
                                 [](const Posting& a, const Posting& b) {
                                   return a.row != b.row
                                              ? a.row < b.row
                                              : a.position < b.position;
                                 });
      ok = it != list.end() && it->row == want.row &&
           it->position == want.position;
    }
    if (ok) rows.push_back(p.row);
  }
  return rows;
}

std::vector<uint32_t> InvertedIndex::MatchAllPhrases(
    const std::vector<std::vector<std::string>>& phrases) const {
  if (phrases.empty()) return MatchPhrase({});
  std::vector<uint32_t> acc = MatchPhrase(phrases[0]);
  for (size_t i = 1; i < phrases.size() && !acc.empty(); ++i) {
    std::vector<uint32_t> next = MatchPhrase(phrases[i]);
    std::vector<uint32_t> merged;
    std::set_intersection(acc.begin(), acc.end(), next.begin(), next.end(),
                          std::back_inserter(merged));
    acc = std::move(merged);
  }
  return acc;
}

bool InvertedIndex::AnyMatch(const std::vector<std::string>& phrase) const {
  if (phrase.empty()) return num_rows_ > 0;
  return !MatchPhrase(phrase).empty();
}

size_t InvertedIndex::TokenRowCount(std::string_view token) const {
  const std::vector<Posting>* list = Lookup(token);
  if (list == nullptr) return 0;
  // Postings are row-sorted; count distinct rows.
  size_t n = 0;
  uint32_t prev = UINT32_MAX;
  for (const Posting& p : *list) {
    if (p.row != prev) {
      ++n;
      prev = p.row;
    }
  }
  return n;
}

size_t InvertedIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [token, list] : postings_) {
    bytes += token.size() + list.size() * sizeof(Posting) + 64;
  }
  return bytes;
}

}  // namespace qbe
