#include "text/inverted_index.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "kernels/kernels.h"
#include "text/tokenizer.h"
#include "util/intersect.h"

namespace qbe {

template <typename CellAt>
void InvertedIndex::BuildImpl(size_t num_cells, const CellAt& cell_at,
                              TokenDict* dict) {
  if (dict == nullptr) {
    owned_dict_ = std::make_unique<TokenDict>();
    dict = owned_dict_.get();
  } else {
    owned_dict_.reset();
  }
  dict_ = dict;
  num_rows_ = num_cells;
  std::vector<uint16_t> row_token_counts(num_cells, 0);
  long_rows_.clear();

  struct Occurrence {
    uint32_t token;
    uint64_t posting;
  };
  std::vector<Occurrence> occurrences;
  for (uint32_t row = 0; row < num_cells; ++row) {
    uint32_t pos = 0;
    ForEachToken(cell_at(row), [&](std::string_view token) {
      occurrences.push_back(
          Occurrence{dict->Intern(token), PackPosting(row, pos)});
      ++pos;
    });
    if (pos >= kLongRow) {
      row_token_counts[row] = kLongRow;
      long_rows_[row] = pos;
    } else {
      row_token_counts[row] = static_cast<uint16_t>(pos);
    }
  }
  row_token_counts_ = std::move(row_token_counts);

  // Counting sort by token id. Occurrences were generated in (row,
  // position) order, so each token's span comes out posting-sorted without
  // a comparison sort.
  const uint32_t universe = static_cast<uint32_t>(dict->size());
  std::vector<uint32_t> slot_map(universe, kNoSlot);
  std::vector<uint32_t> counts(universe, 0);
  for (const Occurrence& o : occurrences) ++counts[o.token];
  std::vector<uint32_t> token_ids;
  std::vector<uint32_t> offsets(1, 0);
  for (uint32_t id = 0; id < universe; ++id) {
    if (counts[id] == 0) continue;
    slot_map[id] = static_cast<uint32_t>(token_ids.size());
    token_ids.push_back(id);
    offsets.push_back(offsets.back() + counts[id]);
  }
  std::vector<uint64_t> postings(occurrences.size());
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Occurrence& o : occurrences) {
    postings[cursor[slot_map[o.token]]++] = o.posting;
  }

  std::vector<uint32_t> row_counts(token_ids.size(), 0);
  for (size_t s = 0; s < token_ids.size(); ++s) {
    uint32_t n = 0;
    uint32_t prev = UINT32_MAX;
    for (uint32_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      uint32_t row = static_cast<uint32_t>(postings[i] >> 32);
      if (row != prev) {
        ++n;
        prev = row;
      }
    }
    row_counts[s] = n;
  }

  // Lookup layout: keep the dense id→slot table when its footprint is
  // within ~4x of the sorted-array alternative (O(1) probes); otherwise
  // drop it and binary-search token_ids_ (a small column sharing a large
  // database dictionary shouldn't pay 4 bytes per foreign token).
  if (static_cast<size_t>(universe) <= token_ids.size() * 4 + 64) {
    slot_of_id_ = std::move(slot_map);
  } else {
    slot_of_id_ = std::vector<uint32_t>();
  }
  postings_ = std::move(postings);
  token_ids_ = std::move(token_ids);
  offsets_ = std::move(offsets);
  row_counts_ = std::move(row_counts);
}

void InvertedIndex::Build(const std::vector<std::string>& cells,
                          TokenDict* dict) {
  BuildImpl(
      cells.size(),
      [&](uint32_t row) { return std::string_view(cells[row]); }, dict);
}

void InvertedIndex::Build(const TextColumnStore& cells, TokenDict* dict) {
  BuildImpl(
      cells.size(), [&](uint32_t row) { return cells[row]; }, dict);
}

void InvertedIndex::LoadMapped(const TokenDict* dict, size_t num_rows,
                               SpanOrVec<uint64_t> postings,
                               SpanOrVec<uint32_t> token_ids,
                               SpanOrVec<uint32_t> offsets,
                               SpanOrVec<uint32_t> row_counts,
                               SpanOrVec<uint32_t> slot_of_id,
                               SpanOrVec<uint16_t> row_token_counts,
                               std::span<const uint32_t> long_row_pairs) {
  owned_dict_.reset();
  dict_ = dict;
  num_rows_ = num_rows;
  postings_ = std::move(postings);
  token_ids_ = std::move(token_ids);
  offsets_ = std::move(offsets);
  row_counts_ = std::move(row_counts);
  slot_of_id_ = std::move(slot_of_id);
  row_token_counts_ = std::move(row_token_counts);
  long_rows_.clear();
  for (size_t i = 0; i + 1 < long_row_pairs.size(); i += 2) {
    long_rows_[long_row_pairs[i]] = long_row_pairs[i + 1];
  }
}

uint32_t InvertedIndex::SlotOf(uint32_t token_id) const {
  if (!slot_of_id_.empty()) {
    return token_id < slot_of_id_.size() ? slot_of_id_[token_id] : kNoSlot;
  }
  auto it = std::lower_bound(token_ids_.begin(), token_ids_.end(), token_id);
  if (it == token_ids_.end() || *it != token_id) return kNoSlot;
  return static_cast<uint32_t>(it - token_ids_.begin());
}

void InvertedIndex::MatchPhraseIdsInto(std::span<const uint32_t> ids,
                                       std::vector<uint32_t>* rows) const {
  rows->clear();
  if (ids.empty()) {
    rows->resize(num_rows_);
    std::iota(rows->begin(), rows->end(), 0);
    return;
  }
  constexpr size_t kInlineSlots = 16;
  uint32_t slot_buf[kInlineSlots];
  std::vector<uint32_t> slot_heap;
  uint32_t* slots = slot_buf;
  if (ids.size() > kInlineSlots) {
    slot_heap.resize(ids.size());
    slots = slot_heap.data();
  }
  for (size_t k = 0; k < ids.size(); ++k) {
    if (ids[k] == TokenDict::kNoToken) return;
    uint32_t s = SlotOf(ids[k]);
    if (s == kNoSlot) return;
    slots[k] = s;
  }
  if (ids.size() == 1) {
    // Distinct rows of the single token's span, already ascending.
    for (uint32_t i = offsets_[slots[0]]; i < offsets_[slots[0] + 1]; ++i) {
      const uint32_t row = static_cast<uint32_t>(postings_[i] >> 32);
      if (rows->empty() || rows->back() != row) rows->push_back(row);
    }
    return;
  }

  // A posting (row, pos) of the phrase's k-th token witnesses a potential
  // phrase start (row, pos - k); a full occurrence is a packed start value
  // present in every token's shifted span. Intersect spans in ascending
  // length order — galloping when the candidate set is far smaller than the
  // next span, linear positional merge otherwise (similar-length lists,
  // where per-candidate binary search loses).
  size_t order_buf[kInlineSlots];
  std::vector<size_t> order_heap;
  size_t* order = order_buf;
  if (ids.size() > kInlineSlots) {
    order_heap.resize(ids.size());
    order = order_heap.data();
  }
  for (size_t k = 0; k < ids.size(); ++k) order[k] = k;
  std::sort(order, order + ids.size(), [&](size_t a, size_t b) {
    return offsets_[slots[a] + 1] - offsets_[slots[a]] <
           offsets_[slots[b] + 1] - offsets_[slots[b]];
  });

  thread_local std::vector<uint64_t> cand;
  thread_local std::vector<uint64_t> next;
  cand.clear();
  {
    const size_t k = order[0];
    const uint32_t s = slots[k];
    for (uint32_t i = offsets_[s]; i < offsets_[s + 1]; ++i) {
      const uint64_t p = postings_[i];
      if (static_cast<uint32_t>(p) >= k) cand.push_back(p - k);
    }
  }
  for (size_t j = 1; j < ids.size() && !cand.empty(); ++j) {
    const size_t k = order[j];
    const uint32_t s = slots[k];
    // Batched shifted-span merge on the dispatched kernel layer: keeps the
    // candidates whose k-shifted witness occurs in this token's span,
    // galloping when the span dwarfs the candidate set (DESIGN.md §14).
    kernels::IntersectShiftedInPlace(
        &cand,
        std::span<const uint64_t>(postings_.data() + offsets_[s],
                                  offsets_[s + 1] - offsets_[s]),
        static_cast<uint64_t>(k), &next);
  }
  for (uint64_t c : cand) {
    const uint32_t row = static_cast<uint32_t>(c >> 32);
    if (rows->empty() || rows->back() != row) rows->push_back(row);
  }
}

std::vector<uint32_t> InvertedIndex::MatchPhraseIds(
    std::span<const uint32_t> ids) const {
  std::vector<uint32_t> rows;
  MatchPhraseIdsInto(ids, &rows);
  return rows;
}

void InvertedIndex::MatchExactIdsInto(std::span<const uint32_t> ids,
                                      std::vector<uint32_t>* rows) const {
  rows->clear();
  if (ids.empty()) {
    // A cell "equals" the empty phrase iff it tokenizes to nothing.
    for (uint32_t row = 0; row < num_rows_; ++row) {
      if (row_token_counts_[row] == 0) rows->push_back(row);
    }
    return;
  }
  const uint32_t want_count = static_cast<uint32_t>(ids.size());
  if (ids[0] == TokenDict::kNoToken) return;
  const uint32_t first_slot = SlotOf(ids[0]);
  if (first_slot == kNoSlot) return;
  for (size_t k = 1; k < ids.size(); ++k) {
    if (ids[k] == TokenDict::kNoToken || SlotOf(ids[k]) == kNoSlot) return;
  }
  // Exact match = phrase occurrence at position 0 covering the whole cell.
  for (uint32_t i = offsets_[first_slot]; i < offsets_[first_slot + 1]; ++i) {
    const uint64_t posting = postings_[i];
    const uint32_t row = static_cast<uint32_t>(posting >> 32);
    if (static_cast<uint32_t>(posting) != 0) continue;
    if (RowTokenCount(row) != want_count) continue;
    bool ok = true;
    for (size_t k = 1; k < ids.size() && ok; ++k) {
      const uint32_t s = SlotOf(ids[k]);
      const uint64_t want = PackPosting(row, static_cast<uint32_t>(k));
      const uint64_t* begin = postings_.data() + offsets_[s];
      const uint64_t* end = postings_.data() + offsets_[s + 1];
      const uint64_t* it = std::lower_bound(begin, end, want);
      ok = it != end && *it == want;
    }
    if (ok) rows->push_back(row);
  }
}

bool InvertedIndex::AnyMatchIds(std::span<const uint32_t> ids) const {
  if (ids.empty()) return num_rows_ > 0;
  // Same scan as MatchPhraseIdsInto with a first-hit exit.
  constexpr size_t kInlineSlots = 16;
  uint32_t slot_buf[kInlineSlots];
  std::vector<uint32_t> slot_heap;
  uint32_t* slots = slot_buf;
  if (ids.size() > kInlineSlots) {
    slot_heap.resize(ids.size());
    slots = slot_heap.data();
  }
  size_t anchor = 0;
  uint32_t best = UINT32_MAX;
  for (size_t k = 0; k < ids.size(); ++k) {
    if (ids[k] == TokenDict::kNoToken) return false;
    uint32_t s = SlotOf(ids[k]);
    if (s == kNoSlot) return false;
    slots[k] = s;
    if (row_counts_[s] < best) {
      best = row_counts_[s];
      anchor = k;
    }
  }
  const uint32_t anchor_slot = slots[anchor];
  for (uint32_t i = offsets_[anchor_slot]; i < offsets_[anchor_slot + 1];
       ++i) {
    const uint64_t posting = postings_[i];
    const uint32_t row = static_cast<uint32_t>(posting >> 32);
    const uint32_t pos = static_cast<uint32_t>(posting);
    if (pos < anchor) continue;
    const uint32_t start = pos - static_cast<uint32_t>(anchor);
    bool ok = true;
    for (size_t k = 0; k < ids.size() && ok; ++k) {
      if (k == anchor) continue;
      const uint64_t want =
          PackPosting(row, start + static_cast<uint32_t>(k));
      const uint64_t* begin = postings_.data() + offsets_[slots[k]];
      const uint64_t* end = postings_.data() + offsets_[slots[k] + 1];
      const uint64_t* it = std::lower_bound(begin, end, want);
      ok = it != end && *it == want;
    }
    if (ok) return true;
  }
  return false;
}

size_t InvertedIndex::TokenRowCountId(uint32_t token_id) const {
  if (token_id == TokenDict::kNoToken) return 0;
  const uint32_t slot = SlotOf(token_id);
  return slot == kNoSlot ? 0 : row_counts_[slot];
}

std::vector<uint32_t> InvertedIndex::MatchPhrase(
    const std::vector<std::string>& phrase) const {
  if (dict_ == nullptr) return {};  // never built: empty index
  return MatchPhraseIds(dict_->IdsOf(phrase));
}

std::vector<uint32_t> InvertedIndex::MatchAllPhrases(
    const std::vector<std::vector<std::string>>& phrases) const {
  if (phrases.empty()) return MatchPhrase({});
  std::vector<uint32_t> acc = MatchPhrase(phrases[0]);
  std::vector<uint32_t> next;
  std::vector<uint32_t> scratch;
  for (size_t i = 1; i < phrases.size() && !acc.empty(); ++i) {
    if (dict_ == nullptr) return {};
    MatchPhraseIdsInto(dict_->IdsOf(phrases[i]), &next);
    IntersectSortedInPlace(&acc, next, &scratch);
  }
  return acc;
}

bool InvertedIndex::AnyMatch(const std::vector<std::string>& phrase) const {
  if (phrase.empty()) return num_rows_ > 0;
  if (dict_ == nullptr) return false;
  return AnyMatchIds(dict_->IdsOf(phrase));
}

size_t InvertedIndex::TokenRowCount(std::string_view token) const {
  if (dict_ == nullptr) return 0;
  return TokenRowCountId(dict_->Find(token));
}

size_t InvertedIndex::MemoryBytes() const {
  size_t bytes =
      postings_.OwnedBytes() + token_ids_.OwnedBytes() +
      offsets_.OwnedBytes() + row_counts_.OwnedBytes() +
      slot_of_id_.OwnedBytes() + row_token_counts_.OwnedBytes() +
      long_rows_.size() * 24;  // node + key/value estimate
  if (owned_dict_ != nullptr) bytes += owned_dict_->MemoryBytes();
  return bytes;
}

}  // namespace qbe
