#include "text/token_dict.h"

#include "text/tokenizer.h"

namespace qbe {

uint32_t TokenDict::Intern(std::string_view token) {
  auto it = id_by_token_.find(token);
  if (it != id_by_token_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(id_by_token_.size());
  id_by_token_.emplace(std::string(token), id);
  return id;
}

uint32_t TokenDict::Find(std::string_view token) const {
  auto it = id_by_token_.find(token);
  return it == id_by_token_.end() ? kNoToken : it->second;
}

uint32_t TokenDict::TokenizeIntern(std::string_view text,
                                   std::vector<uint32_t>* out) {
  uint32_t n = 0;
  ForEachToken(text, [&](std::string_view token) {
    out->push_back(Intern(token));
    ++n;
  });
  return n;
}

void TokenDict::TokenizeIds(std::string_view text,
                            std::vector<uint32_t>* out) const {
  ForEachToken(text,
               [&](std::string_view token) { out->push_back(Find(token)); });
}

std::vector<uint32_t> TokenDict::IdsOf(
    const std::vector<std::string>& tokens) const {
  std::vector<uint32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) ids.push_back(Find(token));
  return ids;
}

void TokenDict::IdsOfInto(const std::vector<std::string>& tokens,
                          std::vector<uint32_t>* out) const {
  out->clear();
  for (const std::string& token : tokens) out->push_back(Find(token));
}

size_t TokenDict::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [token, id] : id_by_token_) {
    (void)id;
    bytes += token.size() + sizeof(uint32_t) + 48;  // node + bucket overhead
  }
  return bytes;
}

}  // namespace qbe
