#include "text/token_dict.h"

#include "text/tokenizer.h"
#include "util/check.h"

namespace qbe {

uint32_t TokenDict::Intern(std::string_view token) {
  auto it = id_by_token_.find(token);
  if (it != id_by_token_.end()) return it->second;
  QBE_CHECK_MSG(!mapped_, "cannot intern into a snapshot-mapped dictionary");
  owned_tokens_.emplace_back(token);
  std::string_view stored = owned_tokens_.back();
  uint32_t id = static_cast<uint32_t>(token_by_id_.size());
  token_by_id_.push_back(stored);
  id_by_token_.emplace(stored, id);
  return id;
}

uint32_t TokenDict::Find(std::string_view token) const {
  auto it = id_by_token_.find(token);
  return it == id_by_token_.end() ? kNoToken : it->second;
}

uint32_t TokenDict::TokenizeIntern(std::string_view text,
                                   std::vector<uint32_t>* out) {
  uint32_t n = 0;
  ForEachToken(text, [&](std::string_view token) {
    out->push_back(Intern(token));
    ++n;
  });
  return n;
}

void TokenDict::TokenizeIds(std::string_view text,
                            std::vector<uint32_t>* out) const {
  ForEachToken(text,
               [&](std::string_view token) { out->push_back(Find(token)); });
}

std::vector<uint32_t> TokenDict::IdsOf(
    const std::vector<std::string>& tokens) const {
  std::vector<uint32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) ids.push_back(Find(token));
  return ids;
}

void TokenDict::IdsOfInto(const std::vector<std::string>& tokens,
                          std::vector<uint32_t>* out) const {
  out->clear();
  for (const std::string& token : tokens) out->push_back(Find(token));
}

void TokenDict::LoadMappedArena(std::span<const char> arena,
                                std::span<const uint32_t> offsets) {
  QBE_CHECK(token_by_id_.empty());
  QBE_CHECK(!offsets.empty());
  const size_t n = offsets.size() - 1;
  token_by_id_.reserve(n);
  id_by_token_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string_view token(arena.data() + offsets[i],
                           offsets[i + 1] - offsets[i]);
    token_by_id_.push_back(token);
    id_by_token_.emplace(token, static_cast<uint32_t>(i));
  }
  mapped_ = true;
}

size_t TokenDict::MemoryBytes() const {
  size_t bytes = token_by_id_.capacity() * sizeof(std::string_view);
  for (const auto& [token, id] : id_by_token_) {
    (void)id;
    bytes += sizeof(uint32_t) + sizeof(std::string_view) + 48;  // node est.
  }
  if (!mapped_) {
    for (const std::string& token : owned_tokens_) bytes += token.size();
  }
  return bytes;
}

}  // namespace qbe
