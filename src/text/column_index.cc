#include "text/column_index.h"

#include <algorithm>

#include "kernels/kernels.h"
#include "util/check.h"

namespace qbe {

void ColumnIndex::RegisterColumn(int column_gid, const InvertedIndex* index) {
  QBE_CHECK(column_gid == static_cast<int>(columns_.size()));
  if (dict_ == nullptr) {
    dict_ = &index->dict();
  } else {
    QBE_CHECK_MSG(dict_ == &index->dict(),
                  "all column indexes must share one TokenDict");
  }
  columns_.push_back(index);
  // The per-column index already knows its distinct tokens — no cell is
  // re-tokenized here. Registration order keeps each list sorted.
  for (uint32_t id : index->distinct_token_ids()) {
    token_columns_[id].push_back(column_gid);
  }
}

std::vector<int> ColumnIndex::ColumnsContainingIds(
    std::span<const uint32_t> ids) const {
  std::vector<int> result;
  if (ids.empty()) {
    for (int c = 0; c < num_columns(); ++c)
      if (columns_[c]->num_rows() > 0) result.push_back(c);
    return result;
  }
  // Intersect the token directories to find columns containing every token,
  // then verify the consecutive-position requirement per column.
  std::vector<int> cand;
  std::vector<int> scratch;
  for (size_t k = 0; k < ids.size(); ++k) {
    if (ids[k] == TokenDict::kNoToken) return result;
    auto it = token_columns_.find(ids[k]);
    if (it == token_columns_.end()) return result;
    if (k == 0) {
      cand = it->second;
    } else {
      kernels::IntersectSortedInPlace(&cand, it->second, &scratch);
    }
    if (cand.empty()) return result;
  }
  for (int c : cand) {
    if (ids.size() == 1 || columns_[c]->AnyMatchIds(ids)) result.push_back(c);
  }
  return result;
}

std::vector<int> ColumnIndex::ColumnsContaining(
    const std::vector<std::string>& phrase) const {
  if (dict_ == nullptr) return {};
  return ColumnsContainingIds(dict_->IdsOf(phrase));
}

size_t ColumnIndex::MemoryBytes() const {
  size_t bytes = columns_.size() * sizeof(void*);
  for (const auto& [id, cols] : token_columns_) {
    (void)id;
    bytes += sizeof(uint32_t) + cols.size() * sizeof(int) + 48;
  }
  return bytes;
}

}  // namespace qbe
