#include "text/column_index.h"

#include <algorithm>

#include "text/tokenizer.h"
#include "util/check.h"

namespace qbe {

void ColumnIndex::RegisterColumn(int column_gid, const InvertedIndex* index,
                                 const std::vector<std::string>& cells) {
  QBE_CHECK(column_gid == static_cast<int>(columns_.size()));
  columns_.push_back(index);
  // Record the distinct tokens of this column in the directory.
  std::vector<std::string> seen;
  for (const std::string& cell : cells) {
    for (std::string& tok : Tokenize(cell)) {
      seen.push_back(std::move(tok));
    }
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  for (const std::string& tok : seen) token_columns_[tok].push_back(column_gid);
}

std::vector<int> ColumnIndex::ColumnsContaining(
    const std::vector<std::string>& phrase) const {
  std::vector<int> result;
  if (phrase.empty()) {
    for (int c = 0; c < num_columns(); ++c)
      if (columns_[c]->num_rows() > 0) result.push_back(c);
    return result;
  }
  // Intersect the token directories to find columns containing every token,
  // then verify the consecutive-position requirement per column.
  std::vector<int> cand;
  for (size_t k = 0; k < phrase.size(); ++k) {
    auto it = token_columns_.find(phrase[k]);
    if (it == token_columns_.end()) return result;
    if (k == 0) {
      cand = it->second;
    } else {
      std::vector<int> merged;
      std::set_intersection(cand.begin(), cand.end(), it->second.begin(),
                            it->second.end(), std::back_inserter(merged));
      cand = std::move(merged);
    }
    if (cand.empty()) return result;
  }
  for (int c : cand) {
    if (phrase.size() == 1 || columns_[c]->AnyMatch(phrase)) result.push_back(c);
  }
  return result;
}

size_t ColumnIndex::MemoryBytes() const {
  size_t bytes = columns_.size() * sizeof(void*);
  for (const auto& [token, cols] : token_columns_) {
    bytes += token.size() + cols.size() * sizeof(int) + 64;
  }
  return bytes;
}

}  // namespace qbe
