#ifndef QBE_TEXT_TOKEN_DICT_H_
#define QBE_TEXT_TOKEN_DICT_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qbe {

class SnapshotReader;
class SnapshotWriter;

/// Database-wide token dictionary: every distinct token across all indexed
/// text columns gets a dense uint32 id, assigned in first-occurrence order
/// at load time and immutable afterwards. Phrase predicates carry id
/// vectors instead of string vectors, so the per-probe cost of the text
/// substrate is integer compares — no string hashing, no allocation.
///
/// Ids are only meaningful relative to the dictionary that assigned them; a
/// Database owns exactly one TokenDict shared by all of its inverted
/// indexes and the master column index.
///
/// Token bytes live either in per-token owned storage (build mode) or in a
/// snapshot's mapped string arena (LoadMappedArena): the lookup map keys
/// are string_views into that storage, so a snapshot load hashes each token
/// once but copies no string bytes.
class TokenDict {
 public:
  /// Sentinel for "token not in the dictionary". A phrase containing it
  /// cannot match any indexed cell, but the slot is kept so phrase
  /// positions stay aligned.
  static constexpr uint32_t kNoToken = UINT32_MAX;

  TokenDict() = default;
  TokenDict(const TokenDict&) = delete;
  TokenDict& operator=(const TokenDict&) = delete;

  /// Id of `token`, interning it if unseen. Build-time only: interning
  /// after indexes are built would produce ids no index knows about, and
  /// a mapped dictionary is immutable.
  uint32_t Intern(std::string_view token);

  /// Id of `token`, or kNoToken. String_view lookup — no std::string is
  /// materialized for the probe.
  uint32_t Find(std::string_view token) const;

  /// Tokenizes `text` and appends one id per token, interning unseen
  /// tokens. Returns the number of tokens appended.
  uint32_t TokenizeIntern(std::string_view text, std::vector<uint32_t>* out);

  /// Tokenizes `text` and appends one id per token; unseen tokens map to
  /// kNoToken.
  void TokenizeIds(std::string_view text, std::vector<uint32_t>* out) const;

  /// Maps already-tokenized `tokens` to ids (kNoToken for unseen).
  std::vector<uint32_t> IdsOf(const std::vector<std::string>& tokens) const;

  /// Allocation-reusing variant of IdsOf: writes into `*out` (cleared
  /// first; capacity is kept).
  void IdsOfInto(const std::vector<std::string>& tokens,
                 std::vector<uint32_t>* out) const;

  /// The token spelled by `id` (valid for ids < size()). Backs snapshot
  /// serialization of the string arena.
  std::string_view TokenAt(uint32_t id) const { return token_by_id_[id]; }

  /// Rebinds the dictionary to a snapshot's mapped string arena:
  /// `offsets` has n+1 ascending entries delimiting token i's bytes in
  /// `arena`. Rebuilds the lookup map over views into the mapping (no
  /// string copies); Intern becomes illegal afterwards.
  void LoadMappedArena(std::span<const char> arena,
                       std::span<const uint32_t> offsets);

  bool mapped() const { return mapped_; }

  size_t size() const { return token_by_id_.size(); }

  /// Approximate heap footprint, for the harness's memory accounting.
  size_t MemoryBytes() const;

 private:
  friend class SnapshotReader;
  friend class SnapshotWriter;

  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string_view, uint32_t, Hash, std::equal_to<>>
      id_by_token_;
  std::vector<std::string_view> token_by_id_;  // id → spelling
  std::deque<std::string> owned_tokens_;  // build-mode backing (stable addrs)
  bool mapped_ = false;
};

}  // namespace qbe

#endif  // QBE_TEXT_TOKEN_DICT_H_
