#ifndef QBE_SHARD_PARTITION_H_
#define QBE_SHARD_PARTITION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/database.h"

namespace qbe {

class DbView;

/// Horizontal partitioning of a Database into shard-local databases
/// (DESIGN.md §15). The one invariant everything downstream leans on:
///
///   FK co-location — a row and every row it (transitively) joins with via
///   any FK edge land in the same shard, so no join edge ever crosses a
///   shard boundary and every join witness of an existence query lies
///   wholly inside one shard.
///
/// Rows are grouped into join-connected components (union-find over the
/// row-level join indexes, covering diamond schemas and multi-parent rows),
/// and whole components are assigned to shards — by a seeded hash of the
/// component's representative key (kHashPk: stable, skew-resistant) or by
/// contiguous balanced ranges in representative order (kRowRange: locality-
/// preserving). A component is indivisible: splitting one would sever a
/// join edge.
enum class PartitionMode { kHashPk, kRowRange };

const char* PartitionModeName(PartitionMode mode);
std::optional<PartitionMode> ParsePartitionMode(const std::string& name);

struct PartitionOptions {
  int num_shards = 1;
  PartitionMode mode = PartitionMode::kHashPk;
  /// Seed of the kHashPk placement hash (and nothing else); kRowRange is
  /// seed-independent.
  uint64_t seed = 0;
};

/// The computed row → shard assignment. Deterministic: the same database
/// and options always produce the same plan.
struct PartitionPlan {
  int num_shards = 1;
  PartitionMode mode = PartitionMode::kHashPk;
  uint64_t seed = 0;
  /// shard_of[rel][row] ∈ [0, num_shards). Empty shards are legal (e.g.
  /// one giant join component).
  std::vector<std::vector<uint32_t>> shard_of;

  /// Total rows assigned to each shard (skew diagnostics).
  std::vector<uint64_t> RowsPerShard() const;
};

/// Groups rows into join-connected components over every FK edge and
/// assigns whole components to shards. The database must have its indexes
/// built (ParentRowOf drives the union-find).
PartitionPlan ComputePartitionPlan(const Database& db,
                                   const PartitionOptions& options);

/// Materializes the plan: one self-contained Database per shard with the
/// full catalog (identical relation/column/FK ids — schema-level artifacts
/// like text-column gids and join-tree enumeration are shard-invariant),
/// each holding only its assigned rows, with indexes built. Within a shard,
/// rows keep their original relative order, so shard-local results are
/// deterministic.
std::vector<Database> SplitDatabase(const Database& db,
                                    const PartitionPlan& plan);

/// Ingest-time routing: the shard where a new `rel` row must land so FK
/// co-location is preserved across appends. Constraints come from related
/// rows already present in some shard — FK parents this row references, and
/// live child rows already referencing this row's PK value (so a parent
/// appended after its children joins them). Conflicting constraints (two
/// related rows live in different shards) return -1 with `*error` set — the
/// append must be rejected, because serving it from any single shard would
/// sever a join edge. An unconstrained row routes by a deterministic seeded
/// hash of its would-be component key, chosen so future relatives hash to
/// the same shard.
int RouteAppend(const std::vector<DbView>& shard_views, int rel,
                const std::vector<Value>& values, uint64_t seed,
                std::string* error);

/// Shardset manifest: a small text file naming the per-shard snapshot
/// files, written by `qbe_shard split` and consumed by `qbe_serve
/// --shardset`. Relative shard paths resolve against the manifest's
/// directory.
struct ShardSet {
  PartitionMode mode = PartitionMode::kHashPk;
  uint64_t seed = 0;
  std::vector<std::string> paths;

  int num_shards() const { return static_cast<int>(paths.size()); }
};

bool WriteShardSet(const std::string& path, const ShardSet& set,
                   std::string* error);
std::optional<ShardSet> ReadShardSet(const std::string& path,
                                     std::string* error);

}  // namespace qbe

#endif  // QBE_SHARD_PARTITION_H_
