#include "shard/shard_exec.h"

#include <chrono>

#include "util/check.h"

namespace qbe {

ShardExecSet::ShardExecSet(const std::vector<DbView>& views,
                           const SchemaGraph& graph, const Options& options) {
  QBE_CHECK_MSG(!views.empty(), "ShardExecSet needs at least one shard");
  shards_.reserve(views.size());
  for (const DbView& view : views) {
    shards_.push_back(std::make_unique<Shard>(view, graph, options));
  }
}

bool ShardExecSet::Exists(const JoinTree& tree,
                          const std::vector<PhrasePredicate>& predicates,
                          TraceContext* trace, int* answered_by) const {
  if (answered_by != nullptr) *answered_by = -1;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    // A shard where some tree vertex has no live rows admits no witness;
    // skipping it is outcome-neutral and keeps skewed/empty shards cheap.
    bool has_empty_vertex = false;
    tree.verts.ForEach([&](int v) {
      if (shard.exec_view.LiveRows(v) == 0) has_empty_vertex = true;
    });
    if (has_empty_vertex) {
      shard.skipped_empty.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    shard.probes.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->Count(TraceCounter::kShardProbes, 1);
    const auto t0 = std::chrono::steady_clock::now();
    const bool found = shard.exec.Exists(tree, predicates, shard.memo.get(),
                                         shard.match_cache.get(), trace);
    shard.busy_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count(),
        std::memory_order_relaxed);
    if (found) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      if (answered_by != nullptr) *answered_by = static_cast<int>(s);
      return true;
    }
  }
  return false;
}

uint64_t ShardExecSet::TotalLiveRows(int rel) const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->exec_view.LiveRows(rel);
  }
  return total;
}

std::vector<ShardExecSet::ShardCounters> ShardExecSet::Counters() const {
  std::vector<ShardCounters> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardCounters c;
    c.probes = shard->probes.load(std::memory_order_relaxed);
    c.hits = shard->hits.load(std::memory_order_relaxed);
    c.skipped_empty = shard->skipped_empty.load(std::memory_order_relaxed);
    c.busy_seconds =
        static_cast<double>(shard->busy_ns.load(std::memory_order_relaxed)) /
        1e9;
    if (shard->memo != nullptr) {
      c.subtree_memo_hits = shard->memo->hits();
      c.subtree_memo_lookups = shard->memo->lookups();
    }
    if (shard->match_cache != nullptr) {
      c.match_cache_hits = static_cast<int64_t>(shard->match_cache->hits());
      c.match_cache_lookups =
          static_cast<int64_t>(shard->match_cache->lookups());
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace qbe
