#ifndef QBE_SHARD_SHARD_EXEC_H_
#define QBE_SHARD_SHARD_EXEC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/executor.h"
#include "exec/match_cache.h"
#include "ingest/db_view.h"
#include "obs/trace.h"
#include "schema/schema_graph.h"

namespace qbe {

/// Shard-local execution state for one sharded discovery request: one
/// Executor per shard plus the per-shard caches whose values are functions
/// of shard-local data (SubtreeMemo stores shard-local row sets, MatchCache
/// shard-local row lists — sharing either across shards would corrupt
/// results). EvalEngine routes each *logical* existence query through
/// Exists(), which probes the shards in canonical order 0..N-1 and
/// short-circuits on the first witness.
///
/// Correctness (DESIGN.md §15): FK co-location guarantees every join
/// witness lies wholly inside one shard, so a logical existence query is
/// true iff it is true on some shard — the OR over shard-local probes.
/// The probe *order* only affects which shard answers, never the answer,
/// and the engine charges its counters once per logical query, so
/// verification counts and outcomes are bit-identical to the unsharded
/// engine.
class ShardExecSet {
 public:
  struct Options {
    /// Mirror of VerifyOptions::subtree_memo, applied per shard.
    bool subtree_memo = true;
    /// Mirror of DiscoveryOptions::use_match_cache, applied per shard.
    bool use_match_cache = true;
  };

  /// Snapshot of one shard's probe accounting (diagnostics only; never
  /// feeds back into outcomes).
  struct ShardCounters {
    int64_t probes = 0;         // existence queries actually run here
    int64_t hits = 0;           // probes that found a witness here
    int64_t skipped_empty = 0;  // probes skipped: some tree vertex empty
    double busy_seconds = 0.0;  // wall time spent executing probes
    int64_t subtree_memo_hits = 0;
    int64_t subtree_memo_lookups = 0;
    int64_t match_cache_hits = 0;
    int64_t match_cache_lookups = 0;
  };

  /// `views` must outlive this set (Executor copies the view, but probes
  /// read through it). The graph is schema-level and shared by all shards
  /// (identical catalogs by construction of SplitDatabase).
  ShardExecSet(const std::vector<DbView>& views, const SchemaGraph& graph,
               const Options& options);

  /// The scatter-gather probe: true iff some shard has a witness for the
  /// existence query. Probes shards in canonical order with short-circuit;
  /// shards where any tree vertex has zero live rows are skipped without
  /// executing (outcome-neutral: an empty vertex admits no witness).
  /// Thread-safe — verify-pool workers call this concurrently; per-shard
  /// memo/match caches are thread-safe and stats are atomic. Writes the
  /// answering shard id to `answered_by` (-1 when no shard has a witness).
  bool Exists(const JoinTree& tree,
              const std::vector<PhrasePredicate>& predicates,
              TraceContext* trace, int* answered_by) const;

  /// Live rows of `rel` summed over all shards == the unsharded count
  /// (partitioning covers every row exactly once). FILTER's trivial-success
  /// check must see global emptiness, not shard 0's.
  uint64_t TotalLiveRows(int rel) const;

  std::vector<ShardCounters> Counters() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const DbView& view(int s) const { return shards_[s]->exec_view; }

 private:
  struct Shard {
    DbView exec_view;  // the shard's pinned view (copied; cheap value type)
    Executor exec;
    std::unique_ptr<Executor::SubtreeMemo> memo;
    std::unique_ptr<MatchCache> match_cache;
    std::atomic<int64_t> probes{0};
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> skipped_empty{0};
    std::atomic<int64_t> busy_ns{0};

    Shard(const DbView& view, const SchemaGraph& graph,
          const Options& options)
        : exec_view(view),
          exec(exec_view, graph),
          memo(options.subtree_memo
                   ? std::make_unique<Executor::SubtreeMemo>()
                   : nullptr),
          match_cache(options.use_match_cache ? std::make_unique<MatchCache>()
                                              : nullptr) {}
  };

  // unique_ptr per shard: Shard holds atomics and an Executor referencing
  // its own exec_view, so elements must never move.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qbe

#endif  // QBE_SHARD_SHARD_EXEC_H_
