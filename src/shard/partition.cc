#include "shard/partition.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include "ingest/db_view.h"
#include "util/check.h"
#include "util/hash64.h"

namespace qbe {

const char* PartitionModeName(PartitionMode mode) {
  switch (mode) {
    case PartitionMode::kHashPk: return "hash";
    case PartitionMode::kRowRange: return "range";
  }
  return "unknown";
}

std::optional<PartitionMode> ParsePartitionMode(const std::string& name) {
  if (name == "hash") return PartitionMode::kHashPk;
  if (name == "range") return PartitionMode::kRowRange;
  return std::nullopt;
}

std::vector<uint64_t> PartitionPlan::RowsPerShard() const {
  std::vector<uint64_t> rows(num_shards, 0);
  for (const auto& rel_rows : shard_of) {
    for (uint32_t s : rel_rows) rows[s] += 1;
  }
  return rows;
}

namespace {

/// Union-find with path halving over global row ids.
struct UnionFind {
  std::vector<uint32_t> parent;

  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    // Smaller root wins, so every root is also its component's minimum —
    // the canonical representative the assignment hashes.
    if (a < b) parent[b] = a;
    else parent[a] = b;
  }
};

/// The stable key a component representative hashes under kHashPk: the
/// row's declared PK value when its relation is a PK target, else its
/// first id-column value, else the row index. PK values survive row
/// reordering and ingestion, so placement is a property of the data.
int64_t RepresentativeKey(const Database& db, int rel, uint32_t row) {
  for (const ForeignKey& fk : db.foreign_keys()) {
    if (fk.to_rel == rel) return db.relation(rel).IdAt(fk.to_col, row);
  }
  const Relation& relation = db.relation(rel);
  for (int c = 0; c < relation.num_columns(); ++c) {
    if (relation.columns()[c].type == ColumnType::kId) {
      return relation.IdAt(c, row);
    }
  }
  return static_cast<int64_t>(row);
}

uint32_t HashShard(int rel, int64_t key, uint64_t seed, int num_shards) {
  int64_t buf[2] = {static_cast<int64_t>(rel), key};
  return static_cast<uint32_t>(Hash64(buf, sizeof(buf), seed) %
                               static_cast<uint64_t>(num_shards));
}

}  // namespace

PartitionPlan ComputePartitionPlan(const Database& db,
                                   const PartitionOptions& options) {
  QBE_CHECK_MSG(options.num_shards >= 1, "num_shards must be >= 1");
  const int num_rels = db.num_relations();

  PartitionPlan plan;
  plan.num_shards = options.num_shards;
  plan.mode = options.mode;
  plan.seed = options.seed;
  plan.shard_of.resize(num_rels);

  std::vector<size_t> offset(num_rels + 1, 0);
  for (int r = 0; r < num_rels; ++r) {
    offset[r + 1] = offset[r] + db.relation(r).num_rows();
    plan.shard_of[r].assign(db.relation(r).num_rows(), 0);
  }
  const size_t total = offset[num_rels];
  if (options.num_shards == 1 || total == 0) return plan;

  // Join-connected components: union every (child row, parent row) pair of
  // every FK edge. The row-level join index makes this one O(1) read per
  // child row; dangling FKs (-1) impose no constraint.
  UnionFind uf(total);
  for (const ForeignKey& fk : db.foreign_keys()) {
    const uint32_t from_rows = db.relation(fk.from_rel).num_rows();
    for (uint32_t row = 0; row < from_rows; ++row) {
      const int32_t parent = db.ParentRowOf(fk.id, row);
      if (parent >= 0) {
        uf.Union(static_cast<uint32_t>(offset[fk.from_rel] + row),
                 static_cast<uint32_t>(offset[fk.to_rel] + parent));
      }
    }
  }

  // Whole components map to shards through their representative (the
  // minimum global id, which is exactly the union-find root here).
  std::vector<uint32_t> shard_of_root(total, 0);
  if (options.mode == PartitionMode::kHashPk) {
    int rel = 0;
    for (size_t gid = 0; gid < total; ++gid) {
      if (uf.Find(static_cast<uint32_t>(gid)) != gid) continue;
      while (offset[rel + 1] <= gid) ++rel;
      const uint32_t row = static_cast<uint32_t>(gid - offset[rel]);
      shard_of_root[gid] = HashShard(rel, RepresentativeKey(db, rel, row),
                                     options.seed, options.num_shards);
    }
  } else {
    // kRowRange: components in representative order, packed into contiguous
    // row-count-balanced blocks. Components are indivisible, so shards can
    // be uneven (or empty) under heavy skew; RowsPerShard reports it.
    std::vector<uint32_t> comp_rows(total, 0);
    for (size_t gid = 0; gid < total; ++gid) {
      comp_rows[uf.Find(static_cast<uint32_t>(gid))] += 1;
    }
    uint64_t assigned = 0;
    for (size_t gid = 0; gid < total; ++gid) {
      if (uf.Find(static_cast<uint32_t>(gid)) != gid) continue;
      shard_of_root[gid] = static_cast<uint32_t>(std::min<uint64_t>(
          options.num_shards - 1,
          assigned * static_cast<uint64_t>(options.num_shards) / total));
      assigned += comp_rows[gid];
    }
  }

  for (int r = 0; r < num_rels; ++r) {
    const uint32_t rows = db.relation(r).num_rows();
    for (uint32_t row = 0; row < rows; ++row) {
      plan.shard_of[r][row] =
          shard_of_root[uf.Find(static_cast<uint32_t>(offset[r] + row))];
    }
  }
  return plan;
}

std::vector<Database> SplitDatabase(const Database& db,
                                    const PartitionPlan& plan) {
  QBE_CHECK(static_cast<int>(plan.shard_of.size()) == db.num_relations());
  std::vector<Database> shards;
  shards.reserve(plan.num_shards);
  std::vector<Value> row_values;
  for (int s = 0; s < plan.num_shards; ++s) {
    Database shard;
    for (int r = 0; r < db.num_relations(); ++r) {
      const Relation& source = db.relation(r);
      Relation out(source.name(), source.columns());
      for (uint32_t row = 0; row < source.num_rows(); ++row) {
        if (plan.shard_of[r][row] != static_cast<uint32_t>(s)) continue;
        row_values.clear();
        for (int c = 0; c < source.num_columns(); ++c) {
          if (source.columns()[c].type == ColumnType::kId) {
            row_values.emplace_back(source.IdAt(c, row));
          } else {
            row_values.emplace_back(std::string(source.TextAt(c, row)));
          }
        }
        out.AppendRow(row_values);
      }
      shard.AddRelation(std::move(out));
    }
    for (const ForeignKey& fk : db.foreign_keys()) {
      shard.AddForeignKey(
          db.relation(fk.from_rel).name(),
          db.relation(fk.from_rel).columns()[fk.from_col].name,
          db.relation(fk.to_rel).name(),
          db.relation(fk.to_rel).columns()[fk.to_col].name);
    }
    shard.BuildIndexes();
    shards.push_back(std::move(shard));
  }
  return shards;
}

namespace {

/// Shard holding a live row of `rel` whose id column `col` equals `key`,
/// or -1. Checks the base PK index first, then overlay-appended rows.
int FindShardWithLivePk(const std::vector<DbView>& views, int rel, int col,
                        int64_t key) {
  for (size_t s = 0; s < views.size(); ++s) {
    const DbView& view = views[s];
    const int64_t base_row = view.base().PkLookup(rel, col, key);
    if (base_row >= 0 &&
        view.IsLive(rel, static_cast<uint32_t>(base_row))) {
      return static_cast<int>(s);
    }
    const uint32_t base_rows = view.base().relation(rel).num_rows();
    for (uint32_t row = base_rows; row < view.TotalRows(rel); ++row) {
      if (view.IsLive(rel, row) && view.IdAt(rel, col, row) == key) {
        return static_cast<int>(s);
      }
    }
  }
  return -1;
}

/// Shard holding a live `edge`-child row whose FK value equals `key`,
/// or -1 (an orphan child appended before this parent).
int FindShardWithLiveChild(const std::vector<DbView>& views,
                           const ForeignKey& fk, int64_t key) {
  for (size_t s = 0; s < views.size(); ++s) {
    const DbView& view = views[s];
    const std::vector<uint32_t>* base_rows =
        view.base().FkLookup(fk.id, key);
    if (base_rows != nullptr) {
      for (uint32_t row : *base_rows) {
        if (view.IsLive(fk.from_rel, row)) return static_cast<int>(s);
      }
    }
    const uint32_t first_delta = view.base().relation(fk.from_rel).num_rows();
    for (uint32_t row = first_delta; row < view.TotalRows(fk.from_rel);
         ++row) {
      if (view.IsLive(fk.from_rel, row) &&
          view.IdAt(fk.from_rel, fk.from_col, row) == key) {
        return static_cast<int>(s);
      }
    }
  }
  return -1;
}

}  // namespace

int RouteAppend(const std::vector<DbView>& shard_views, int rel,
                const std::vector<Value>& values, uint64_t seed,
                std::string* error) {
  QBE_CHECK(!shard_views.empty());
  const Database& db = shard_views[0].base();
  if (rel < 0 || rel >= db.num_relations()) {
    if (error != nullptr) {
      *error = "route: relation id " + std::to_string(rel) + " out of range";
    }
    return -1;
  }
  if (values.size() != static_cast<size_t>(db.relation(rel).num_columns())) {
    if (error != nullptr) {
      *error = "route: row arity mismatch for " + db.relation(rel).name();
    }
    return -1;
  }

  // Constraints from rows already placed: the parents this row references,
  // and any live children already referencing this row's PK value.
  int constraint = -1;
  auto merge = [&](int shard, const ForeignKey& fk, const char* role) {
    if (shard < 0) return true;
    if (constraint < 0 || constraint == shard) {
      constraint = shard;
      return true;
    }
    if (error != nullptr) {
      *error = "cross-shard append to " + db.relation(rel).name() + ": " +
               role + " via edge " + fk.label + " lives in shard " +
               std::to_string(shard) + " but another relative is in shard " +
               std::to_string(constraint);
    }
    return false;
  };
  for (const ForeignKey& fk : db.foreign_keys()) {
    if (fk.from_rel == rel) {
      const int64_t key = std::get<int64_t>(values[fk.from_col]);
      if (!merge(FindShardWithLivePk(shard_views, fk.to_rel, fk.to_col, key),
                 fk, "parent")) {
        return -1;
      }
    }
    if (fk.to_rel == rel) {
      const int64_t key = std::get<int64_t>(values[fk.to_col]);
      if (!merge(FindShardWithLiveChild(shard_views, fk, key), fk, "child")) {
        return -1;
      }
    }
  }
  if (constraint >= 0) return constraint;

  // No relative exists yet: hash the row's would-be component key. A row
  // that owns a PK hashes by it — exactly where future children look; an
  // orphan child hashes by its first parent's (relation, key) — exactly
  // where that parent will land when appended. Unrelated rows spread by
  // whatever id they carry.
  for (const ForeignKey& fk : db.foreign_keys()) {
    if (fk.to_rel == rel) {
      return static_cast<int>(
          HashShard(rel, std::get<int64_t>(values[fk.to_col]), seed,
                    static_cast<int>(shard_views.size())));
    }
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    if (fk.from_rel == rel) {
      return static_cast<int>(
          HashShard(fk.to_rel, std::get<int64_t>(values[fk.from_col]), seed,
                    static_cast<int>(shard_views.size())));
    }
  }
  int64_t fallback = 0;
  for (size_t c = 0; c < values.size(); ++c) {
    if (const int64_t* id = std::get_if<int64_t>(&values[c])) {
      fallback = *id;
      break;
    }
  }
  return static_cast<int>(HashShard(
      rel, fallback, seed, static_cast<int>(shard_views.size())));
}

bool WriteShardSet(const std::string& path, const ShardSet& set,
                   std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << "qbe-shardset-v1\n";
  out << "mode " << PartitionModeName(set.mode) << "\n";
  out << "seed " << set.seed << "\n";
  for (const std::string& shard_path : set.paths) {
    out << "shard " << shard_path << "\n";
  }
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::optional<ShardSet> ReadShardSet(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path);
  auto fail = [&](const std::string& why) -> std::optional<ShardSet> {
    if (error != nullptr) *error = path + ": " + why;
    return std::nullopt;
  };
  if (!in) return fail("cannot open shardset manifest");
  std::string line;
  if (!std::getline(in, line) || line != "qbe-shardset-v1") {
    return fail("not a qbe-shardset-v1 manifest");
  }
  // Relative shard paths resolve against the manifest's directory.
  std::string dir;
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);

  ShardSet set;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "mode") {
      std::string name;
      fields >> name;
      std::optional<PartitionMode> mode = ParsePartitionMode(name);
      if (!mode.has_value()) {
        return fail("line " + std::to_string(line_no) +
                    ": unknown partition mode '" + name + "'");
      }
      set.mode = *mode;
    } else if (key == "seed") {
      if (!(fields >> set.seed)) {
        return fail("line " + std::to_string(line_no) + ": bad seed");
      }
    } else if (key == "shard") {
      std::string shard_path;
      fields >> std::ws;
      std::getline(fields, shard_path);
      if (shard_path.empty()) {
        return fail("line " + std::to_string(line_no) +
                    ": shard entry with no path");
      }
      if (shard_path[0] != '/' && !dir.empty()) shard_path = dir + shard_path;
      set.paths.push_back(std::move(shard_path));
    } else {
      return fail("line " + std::to_string(line_no) + ": unknown key '" +
                  key + "'");
    }
  }
  if (set.paths.empty()) return fail("manifest lists no shards");
  return set;
}

}  // namespace qbe
