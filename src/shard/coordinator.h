#ifndef QBE_SHARD_COORDINATOR_H_
#define QBE_SHARD_COORDINATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "ingest/db_view.h"
#include "shard/partition.h"
#include "shard/shard_exec.h"

namespace qbe {

/// Per-request sharded execution diagnostics (metrics/straggler gauges;
/// never feeds back into outcomes).
struct ShardStats {
  std::vector<ShardExecSet::ShardCounters> per_shard;
  /// max / mean busy_seconds over shards that executed at least one probe;
  /// 1.0 when perfectly balanced (or nothing ran). The service exports it
  /// as the straggler gauge.
  double straggler_ratio = 1.0;
};

/// Sharded candidate-column retrieval (DESIGN.md §15). The per-cell
/// "columns containing this value" sets are merged (sorted union) across
/// shards *before* the over-rows intersection: a column can contain every
/// cell of an ET column globally while no single shard contains them all,
/// so per-shard retrieval followed by a column-level merge would
/// under-report. The per-cell union is exact because cell containment is a
/// per-row property and rows partition across shards.
std::vector<std::vector<ColumnRef>> RetrieveCandidateColumnsSharded(
    const std::vector<DbView>& views, const ExampleTable& et);

std::vector<std::vector<ColumnRef>> RetrieveCandidateColumnsShardedRelaxed(
    const std::vector<DbView>& views, const ExampleTable& et,
    int min_row_support);

/// The sharded discovery engine: candidate generation over the merged
/// per-cell containment sets, verification with every logical existence
/// query scatter-gathered across shard-local executors in canonical order
/// (ShardExecSet::Exists), ranking over globally-summed match/live-row
/// counts. Produces bit-identical SQL sets, scores, matched-row counts and
/// verification counters to DiscoverQueries on the unpartitioned data —
/// the deterministic-merge contract the differential suite locks down.
///
/// `views` are the shard-local pinned views, which must (a) come from a
/// FK-co-located partition of one logical database and (b) share its
/// catalog (SplitDatabase guarantees both). kWeave is rejected: it
/// materializes tuple trees directly instead of asking existence queries,
/// so it has no sound scatter-gather form.
DiscoveryResult DiscoverQueriesSharded(const std::vector<DbView>& views,
                                       const ExampleTable& et,
                                       const DiscoveryOptions& options,
                                       uint64_t data_epoch = 0,
                                       ShardStats* stats = nullptr);

/// Owning convenience wrapper: holds the shard databases (e.g. from
/// SplitDatabase or a shardset manifest of per-shard .qbes snapshots) and
/// runs sharded discovery over them.
class ShardCoordinator {
 public:
  /// Takes ownership of shard-local databases (canonical order = vector
  /// order). All shards must share one catalog.
  explicit ShardCoordinator(std::vector<Database> shards);

  /// Opens every snapshot named by the manifest. Returns nullopt with
  /// `*error` set on open failure or catalog mismatch between shards.
  static std::optional<ShardCoordinator> Open(const ShardSet& set,
                                              std::string* error);

  DiscoveryResult Discover(const ExampleTable& et,
                           const DiscoveryOptions& options,
                           ShardStats* stats = nullptr) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const Database& shard(int s) const { return *shards_[s]; }

 private:
  explicit ShardCoordinator(std::vector<std::unique_ptr<Database>> shards)
      : shards_(std::move(shards)) {}

  // unique_ptr keeps shard addresses stable for the views handed out.
  std::vector<std::unique_ptr<Database>> shards_;
};

}  // namespace qbe

#endif  // QBE_SHARD_COORDINATOR_H_
