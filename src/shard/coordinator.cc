#include "shard/coordinator.h"

#include <algorithm>
#include <iterator>
#include <memory>

#include "core/candidate_gen.h"
#include "core/filter_verifier.h"
#include "core/simple_prune.h"
#include "core/verify_all.h"
#include "exec/sql_render.h"
#include "kernels/kernels.h"
#include "obs/trace.h"
#include "schema/schema_graph.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace qbe {
namespace {

bool DeadlineExpired(const DiscoveryOptions& options) {
  return options.deadline != nullptr && options.deadline->Expired();
}

DiscoveryResult& MarkTimedOut(DiscoveryResult& result) {
  result.timed_out = true;
  result.error = "deadline exceeded before verification finished";
  result.queries.clear();
  return result;
}

SpanKind VerifySpanKind(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kVerifyAll: return SpanKind::kVerifyAll;
    case Algorithm::kSimplePrune: return SpanKind::kSimplePrune;
    case Algorithm::kFilter: return SpanKind::kFilter;
    case Algorithm::kFilterExact: return SpanKind::kFilterExact;
    case Algorithm::kWeave: return SpanKind::kWeave;
  }
  return SpanKind::kVerifyAll;
}

std::unique_ptr<CandidateVerifier> MakeVerifier(
    const DiscoveryOptions& options) {
  switch (options.algorithm) {
    case Algorithm::kVerifyAll:
      return std::make_unique<VerifyAll>(options.row_order);
    case Algorithm::kSimplePrune:
      return std::make_unique<SimplePrune>(options.row_order);
    case Algorithm::kFilter: {
      FilterVerifier::Options fo;
      fo.failure_prior = options.failure_prior;
      return std::make_unique<FilterVerifier>(fo);
    }
    case Algorithm::kFilterExact:
      return std::make_unique<FilterVerifier>(options.failure_prior, false);
    case Algorithm::kWeave:
      break;  // rejected before verifier construction
  }
  return nullptr;
}

/// Union across shards of the "columns containing ET cell (r, c)" sets.
/// Containment is a per-row property and the shards partition the rows, so
/// this union equals the unsharded per-cell set exactly; tokens are
/// resolved against each shard's own dictionary (a token absent from a
/// shard matches nothing there, which is what the global answer needs).
void MergedCellColumnsInto(const std::vector<DbView>& views,
                           const ExampleTable& et, int r, int c,
                           std::vector<uint32_t>* ids,
                           std::vector<int>* shard_matches,
                           std::vector<int>* union_scratch,
                           std::vector<int>* merged) {
  merged->clear();
  for (const DbView& view : views) {
    view.IdsOfInto(et.CellTokens(r, c), ids);
    view.ColumnsContainingIdsInto(*ids, shard_matches);
    if (shard_matches->empty()) continue;
    if (merged->empty()) {
      merged->swap(*shard_matches);
      continue;
    }
    union_scratch->clear();
    std::set_union(merged->begin(), merged->end(), shard_matches->begin(),
                   shard_matches->end(), std::back_inserter(*union_scratch));
    merged->swap(*union_scratch);
  }
}

/// The global live-row count of every relation summed over the shard
/// partition; used by ranking (must divide by the unsharded denominator).
uint64_t TotalLiveRows(const std::vector<DbView>& views, int rel) {
  uint64_t total = 0;
  for (const DbView& view : views) total += view.LiveRows(rel);
  return total;
}

/// Sharded replica of discovery.cc's RankScore: integer match and live-row
/// counts are summed across shards first (exact — rows partition), then
/// the identical double arithmetic runs on the identical operands, so
/// scores are bit-identical to the unsharded ranking.
double RankScoreSharded(const std::vector<DbView>& views,
                        const std::vector<EtTokenIds>& shard_et_ids,
                        const ExampleTable& et, const CandidateQuery& query) {
  double selectivity_sum = 0.0;
  int cells = 0;
  for (int c = 0; c < et.num_columns(); ++c) {
    const ColumnRef& col = query.projection[c];
    const uint64_t live_rows = TotalLiveRows(views, col.rel);
    for (int r = 0; r < et.num_rows(); ++r) {
      if (et.cell(r, c).IsEmpty()) continue;
      size_t matches = 0;
      for (size_t s = 0; s < views.size(); ++s) {
        matches += views[s].MatchCount(col, shard_et_ids[s].CellIds(r, c));
      }
      selectivity_sum += live_rows == 0
                             ? 0.0
                             : static_cast<double>(matches) /
                                   static_cast<double>(live_rows);
      ++cells;
    }
  }
  double avg_selectivity = cells == 0 ? 0.0 : selectivity_sum / cells;
  return 1.0 / query.tree.NumVertices() + 0.5 * (1.0 - avg_selectivity);
}

}  // namespace

std::vector<std::vector<ColumnRef>> RetrieveCandidateColumnsSharded(
    const std::vector<DbView>& views, const ExampleTable& et) {
  QBE_CHECK_MSG(!views.empty(), "sharded retrieval needs at least one shard");
  std::vector<std::vector<ColumnRef>> result(et.num_columns());
  std::vector<uint32_t> ids;
  std::vector<int> shard_matches;
  std::vector<int> union_scratch;
  std::vector<int> merged;
  std::vector<int> isect_scratch;
  for (int c = 0; c < et.num_columns(); ++c) {
    // Same fold as candidate_gen.cc's IntersectColumnsOverRows, over the
    // merged per-cell sets.
    std::vector<int> gids;
    bool first = true;
    for (int r = 0; r < et.num_rows() && (first || !gids.empty()); ++r) {
      if (et.cell(r, c).IsEmpty()) continue;
      MergedCellColumnsInto(views, et, r, c, &ids, &shard_matches,
                            &union_scratch, &merged);
      if (first) {
        gids = merged;
        first = false;
      } else {
        kernels::IntersectSortedInPlace(&gids, merged, &isect_scratch);
      }
    }
    QBE_CHECK_MSG(!first, "example table has an empty column");
    for (int gid : gids) result[c].push_back(views[0].TextColumnByGid(gid));
  }
  return result;
}

std::vector<std::vector<ColumnRef>> RetrieveCandidateColumnsShardedRelaxed(
    const std::vector<DbView>& views, const ExampleTable& et,
    int min_row_support) {
  QBE_CHECK_MSG(!views.empty(), "sharded retrieval needs at least one shard");
  const Database& db = views[0].base();
  int need = std::min(min_row_support, et.num_rows());
  std::vector<std::vector<ColumnRef>> result(et.num_columns());
  std::vector<uint32_t> ids;
  std::vector<int> shard_matches;
  std::vector<int> union_scratch;
  std::vector<int> merged;
  for (int c = 0; c < et.num_columns(); ++c) {
    std::vector<int> counts(db.TotalTextColumns(), 0);
    int empty_rows = 0;
    for (int r = 0; r < et.num_rows(); ++r) {
      if (et.cell(r, c).IsEmpty()) {
        ++empty_rows;
        continue;
      }
      MergedCellColumnsInto(views, et, r, c, &ids, &shard_matches,
                            &union_scratch, &merged);
      for (int gid : merged) counts[gid] += 1;
    }
    for (int gid = 0; gid < db.TotalTextColumns(); ++gid) {
      if (counts[gid] + empty_rows >= need) {
        result[c].push_back(db.TextColumnByGid(gid));
      }
    }
  }
  return result;
}

DiscoveryResult DiscoverQueriesSharded(const std::vector<DbView>& views,
                                       const ExampleTable& et,
                                       const DiscoveryOptions& options,
                                       uint64_t data_epoch,
                                       ShardStats* stats) {
  QBE_CHECK_MSG(!views.empty(),
                "sharded discovery needs at least one shard view");
  const Database& db = views[0].base();
  DiscoveryResult result;
  if (!et.IsWellFormed()) {
    result.error =
        "example table must be non-empty with no fully-empty row or column";
    return result;
  }
  if (options.algorithm == Algorithm::kWeave && options.min_row_support < 0) {
    result.error =
        "WEAVE has no sharded form: it materializes tuple trees directly "
        "instead of asking existence queries";
    return result;
  }
  if (DeadlineExpired(options)) return MarkTimedOut(result);

  // The catalog is identical across shards by construction (SplitDatabase
  // copies it verbatim), so the schema graph, join-tree enumeration and
  // text-column gids are shard-invariant — build them once from shard 0.
  SchemaGraph graph(db);
  // Bound into the context to satisfy its reference; in sharded mode every
  // evaluation routes through ctx.shards instead.
  Executor exec0(views[0], graph);

  TraceContext* trace = options.trace;
  if (trace != nullptr) {
    for (const DbView& view : views) {
      if (view.delta() == nullptr) continue;
      trace->Count(TraceCounter::kDeltaRows,
                   static_cast<int64_t>(view.delta()->appended_total));
      trace->Count(TraceCounter::kDeltaTombstones,
                   static_cast<int64_t>(view.delta()->tombstones_total));
    }
  }

  Stopwatch gen_timer;
  SpanRef gen_span =
      trace == nullptr ? kNullSpan : trace->OpenSpan(SpanKind::kCandidateGen);
  CandidateGenOptions gen_options;
  gen_options.max_join_tree_size = options.max_join_tree_size;
  gen_options.max_candidates = options.max_candidates;
  std::vector<std::vector<ColumnRef>> candidate_columns =
      options.min_row_support >= 0
          ? RetrieveCandidateColumnsShardedRelaxed(views, et,
                                                   options.min_row_support)
          : RetrieveCandidateColumnsSharded(views, et);
  for (const auto& cols : candidate_columns) {
    result.candidate_columns_per_et_column.push_back(cols.size());
  }
  std::vector<CandidateQuery> candidates = EnumerateCandidateQueries(
      db, graph, et, candidate_columns, gen_options);
  result.candidate_gen_seconds = gen_timer.ElapsedSeconds();
  result.num_candidates = candidates.size();
  if (trace != nullptr) {
    trace->CloseSpan(gen_span);
    trace->Count(TraceCounter::kCandidatesGenerated,
                 static_cast<int64_t>(candidates.size()));
  }
  if (candidates.empty()) return result;

  if (DeadlineExpired(options)) return MarkTimedOut(result);

  // Tokens are resolved per shard against each shard's own dictionary (a
  // global id space does not exist); verification predicates therefore stay
  // token-level (ctx.et_ids = null) and each shard's executor resolves them
  // on entry. The per-shard ET ids built here feed ranking's MatchCount.
  SpanRef resolve_span =
      trace == nullptr ? kNullSpan
                       : trace->OpenSpan(SpanKind::kEtTokenResolve);
  std::vector<EtTokenIds> shard_et_ids;
  shard_et_ids.reserve(views.size());
  for (const DbView& view : views) shard_et_ids.emplace_back(et, view);
  if (trace != nullptr) trace->CloseSpan(resolve_span);

  ShardExecSet::Options shard_options;
  shard_options.subtree_memo = options.verify.subtree_memo;
  shard_options.use_match_cache = options.use_match_cache;
  ShardExecSet shard_set(views, graph, shard_options);

  VerifyContext ctx{db,            graph,
                    exec0,         et,
                    candidates,    options.seed,
                    options.cache, options.deadline,
                    options.verify, options.verify_pool,
                    /*et_ids=*/nullptr,
                    /*match_cache=*/nullptr,
                    data_epoch,    /*delta=*/nullptr,
                    trace};
  ctx.shards = &shard_set;

  SpanRef verify_span =
      trace == nullptr
          ? kNullSpan
          : trace->OpenSpan(options.min_row_support >= 0
                                ? SpanKind::kRelaxedVerify
                                : VerifySpanKind(options.algorithm));
  ctx.trace_parent = verify_span;

  std::vector<int> matched(candidates.size(), 0);
  std::vector<bool> keep(candidates.size(), false);
  if (options.min_row_support >= 0) {
    int need = std::min(options.min_row_support, et.num_rows());
    EvalEngine engine(ctx, &result.counters);
    Stopwatch timer;
    for (size_t q = 0; q < candidates.size(); ++q) {
      for (int r = 0; r < et.num_rows(); ++r) {
        int remaining = et.num_rows() - r;
        if (matched[q] + remaining < need) break;
        if (engine.EvaluateCandidateRow(static_cast<int>(q), r)) {
          matched[q] += 1;
        }
      }
      keep[q] = matched[q] >= need;
    }
    result.counters.elapsed_seconds += timer.ElapsedSeconds();
  } else {
    std::unique_ptr<CandidateVerifier> verifier = MakeVerifier(options);
    std::vector<bool> valid = verifier->Verify(ctx, &result.counters);
    for (size_t q = 0; q < candidates.size(); ++q) {
      keep[q] = valid[q];
      matched[q] = valid[q] ? et.num_rows() : 0;
    }
  }
  // Cache traffic lives per shard in sharded mode; fold it into the
  // request counters (diagnostics — hit counts legitimately differ from
  // the unsharded engine's, unlike the verification counters above).
  const std::vector<ShardExecSet::ShardCounters> shard_counters =
      shard_set.Counters();
  for (const ShardExecSet::ShardCounters& sc : shard_counters) {
    result.counters.subtree_memo_hits += sc.subtree_memo_hits;
    result.counters.subtree_memo_lookups += sc.subtree_memo_lookups;
    result.counters.match_cache_hits += sc.match_cache_hits;
    result.counters.match_cache_lookups += sc.match_cache_lookups;
  }
  if (trace != nullptr) {
    trace->CloseSpan(verify_span);
    trace->Count(TraceCounter::kQueriesVerified,
                 result.counters.verifications);
    trace->Count(TraceCounter::kMatchCacheHits,
                 result.counters.match_cache_hits);
    trace->Count(TraceCounter::kMatchCacheLookups,
                 result.counters.match_cache_lookups);
    trace->Count(TraceCounter::kSubtreeMemoHits,
                 result.counters.subtree_memo_hits);
    trace->Count(TraceCounter::kSubtreeMemoLookups,
                 result.counters.subtree_memo_lookups);
  }
  if (stats != nullptr) {
    stats->per_shard = shard_counters;
    double max_busy = 0.0;
    double sum_busy = 0.0;
    int active = 0;
    for (const ShardExecSet::ShardCounters& sc : shard_counters) {
      if (sc.probes == 0) continue;
      max_busy = std::max(max_busy, sc.busy_seconds);
      sum_busy += sc.busy_seconds;
      ++active;
    }
    const double mean_busy = active == 0 ? 0.0 : sum_busy / active;
    stats->straggler_ratio = mean_busy > 0.0 ? max_busy / mean_busy : 1.0;
  }

  if (result.counters.aborted) return MarkTimedOut(result);

  ScopedSpan rank_span(trace, SpanKind::kRank);
  std::vector<std::string> labels;
  for (int c = 0; c < et.num_columns(); ++c)
    labels.push_back(et.column_name(c));
  for (size_t q = 0; q < candidates.size(); ++q) {
    if (!keep[q]) continue;
    DiscoveredQuery out;
    out.query = candidates[q];
    out.sql = RenderProjectJoinSql(db, graph, candidates[q].tree,
                                   candidates[q].projection, labels);
    out.matched_rows = matched[q];
    out.score = options.rank_results
                    ? RankScoreSharded(views, shard_et_ids, et, candidates[q])
                    : 0.0;
    result.queries.push_back(std::move(out));
  }
  if (options.rank_results) {
    std::stable_sort(result.queries.begin(), result.queries.end(),
                     [](const DiscoveredQuery& a, const DiscoveredQuery& b) {
                       return a.score > b.score;
                     });
  }
  if (trace != nullptr) {
    trace->Count(TraceCounter::kValidQueries,
                 static_cast<int64_t>(result.queries.size()));
  }
  return result;
}

namespace {

bool CatalogsMatch(const Database& a, const Database& b, std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (a.num_relations() != b.num_relations()) {
    return fail("different relation counts");
  }
  for (int r = 0; r < a.num_relations(); ++r) {
    const Relation& ra = a.relation(r);
    const Relation& rb = b.relation(r);
    if (ra.name() != rb.name()) {
      return fail("relation " + std::to_string(r) + " named '" + ra.name() +
                  "' vs '" + rb.name() + "'");
    }
    if (ra.num_columns() != rb.num_columns()) {
      return fail("relation '" + ra.name() + "' has different column counts");
    }
    for (int c = 0; c < ra.num_columns(); ++c) {
      if (ra.columns()[c].name != rb.columns()[c].name ||
          ra.columns()[c].type != rb.columns()[c].type) {
        return fail("relation '" + ra.name() + "' column " +
                    std::to_string(c) + " differs");
      }
    }
  }
  if (a.foreign_keys().size() != b.foreign_keys().size()) {
    return fail("different foreign-key counts");
  }
  for (size_t e = 0; e < a.foreign_keys().size(); ++e) {
    const ForeignKey& fa = a.foreign_keys()[e];
    const ForeignKey& fb = b.foreign_keys()[e];
    if (fa.from_rel != fb.from_rel || fa.from_col != fb.from_col ||
        fa.to_rel != fb.to_rel || fa.to_col != fb.to_col) {
      return fail("foreign-key edge " + std::to_string(e) + " differs");
    }
  }
  return true;
}

}  // namespace

ShardCoordinator::ShardCoordinator(std::vector<Database> shards) {
  QBE_CHECK_MSG(!shards.empty(), "coordinator needs at least one shard");
  shards_.reserve(shards.size());
  for (Database& db : shards) {
    shards_.push_back(std::make_unique<Database>(std::move(db)));
  }
}

std::optional<ShardCoordinator> ShardCoordinator::Open(const ShardSet& set,
                                                       std::string* error) {
  std::vector<std::unique_ptr<Database>> shards;
  shards.reserve(set.paths.size());
  for (const std::string& path : set.paths) {
    std::string why;
    std::optional<Database> db = Database::OpenSnapshot(path, &why);
    if (!db.has_value()) {
      if (error != nullptr) *error = path + ": " + why;
      return std::nullopt;
    }
    if (!shards.empty()) {
      std::string mismatch;
      if (!CatalogsMatch(*shards[0], *db, &mismatch)) {
        if (error != nullptr) {
          *error = path + ": catalog mismatch with shard 0 (" + mismatch + ")";
        }
        return std::nullopt;
      }
    }
    shards.push_back(std::make_unique<Database>(std::move(*db)));
  }
  if (shards.empty()) {
    if (error != nullptr) *error = "shardset names no shards";
    return std::nullopt;
  }
  return ShardCoordinator(std::move(shards));
}

DiscoveryResult ShardCoordinator::Discover(const ExampleTable& et,
                                           const DiscoveryOptions& options,
                                           ShardStats* stats) const {
  std::vector<DbView> views;
  views.reserve(shards_.size());
  for (const auto& shard : shards_) views.emplace_back(*shard);
  return DiscoverQueriesSharded(views, et, options, 0, stats);
}

}  // namespace qbe
