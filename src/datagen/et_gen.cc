#include "datagen/et_gen.h"

#include <algorithm>
#include <set>

#include "schema/subtree_enum.h"
#include "text/tokenizer.h"
#include "util/check.h"
#include "util/string_util.h"

namespace qbe {
namespace {

/// All text columns of the tree's relations.
std::vector<ColumnRef> TreeTextColumns(const Database& db,
                                       const JoinTree& tree) {
  std::vector<ColumnRef> cols;
  tree.verts.ForEach([&](int v) {
    const Relation& rel = db.relation(v);
    for (int c = 0; c < rel.num_columns(); ++c) {
      if (rel.columns()[c].type == ColumnType::kText) {
        cols.push_back(ColumnRef{v, c});
      }
    }
  });
  return cols;
}

}  // namespace

EtSource::EtSource(const Database& db, const SchemaGraph& graph,
                   const Executor& exec, uint64_t seed,
                   const Options& options) {
  // Rank join trees by text-column richness, then take the first
  // `num_matrices` (in a seed-shuffled order among equals) that yield
  // enough complete distinct rows.
  std::vector<JoinTree> trees =
      EnumerateSubtrees(graph, options.max_tree_size);
  std::vector<std::pair<int, size_t>> ranked;  // (-text_cols, index)
  for (size_t i = 0; i < trees.size(); ++i) {
    int text_cols = static_cast<int>(TreeTextColumns(db, trees[i]).size());
    if (text_cols >= options.min_text_cols) {
      ranked.emplace_back(-text_cols, i);
    }
  }
  Rng rng(seed);
  rng.Shuffle(ranked);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  for (const auto& [neg_cols, index] : ranked) {
    if (num_matrices() >= options.num_matrices) break;
    const JoinTree& tree = trees[index];
    std::vector<ColumnRef> projection = TreeTextColumns(db, tree);
    std::vector<std::vector<std::string>> rows =
        exec.Materialize(tree, {}, projection, options.matrix_row_cap);
    // Keep complete rows only (Step 1 of §6.1 requires rows without empty
    // cells) and deduplicate.
    std::set<std::vector<std::string>> distinct;
    for (std::vector<std::string>& row : rows) {
      bool complete = true;
      for (const std::string& cell : row) {
        if (Tokenize(cell).empty()) {
          complete = false;
          break;
        }
      }
      if (complete) distinct.insert(std::move(row));
    }
    if (distinct.size() < options.min_matrix_rows) continue;
    Matrix matrix;
    matrix.num_cols = static_cast<int>(projection.size());
    matrix.rows.assign(distinct.begin(), distinct.end());
    matrices_.push_back(std::move(matrix));
  }
}

std::optional<ExampleTable> EtSource::Sample(const EtParams& params, int index,
                                             Rng& rng) const {
  const Matrix& matrix = matrices_[index];
  if (static_cast<int>(matrix.rows.size()) < params.m) return std::nullopt;
  if (matrix.num_cols < params.n) return std::nullopt;

  // Step 1: m random distinct complete rows × n random distinct columns.
  std::vector<int> row_pool(matrix.rows.size());
  for (size_t i = 0; i < row_pool.size(); ++i) row_pool[i] = i;
  rng.Shuffle(row_pool);
  std::vector<int> col_pool(matrix.num_cols);
  for (size_t i = 0; i < col_pool.size(); ++i) col_pool[i] = i;
  rng.Shuffle(col_pool);

  std::vector<std::vector<std::string>> grid(params.m);
  for (int r = 0; r < params.m; ++r) {
    for (int c = 0; c < params.n; ++c) {
      grid[r].push_back(matrix.rows[row_pool[r]][col_pool[c]]);
    }
  }

  // Steps 2-3: blank ⌊m·n·s⌋ cells; retry while a row/column goes empty.
  int blanks = static_cast<int>(params.m * params.n * params.s);
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<int> cells(params.m * params.n);
    for (size_t i = 0; i < cells.size(); ++i) cells[i] = i;
    rng.Shuffle(cells);
    std::vector<char> blank(params.m * params.n, 0);
    for (int b = 0; b < blanks; ++b) blank[cells[b]] = 1;

    bool ok = true;
    for (int r = 0; r < params.m && ok; ++r) {
      int filled = 0;
      for (int c = 0; c < params.n; ++c) filled += !blank[r * params.n + c];
      ok = filled > 0;
    }
    for (int c = 0; c < params.n && ok; ++c) {
      int filled = 0;
      for (int r = 0; r < params.m; ++r) filled += !blank[r * params.n + c];
      ok = filled > 0;
    }
    if (!ok) continue;

    ExampleTable et = ExampleTable::WithColumns(params.n);
    for (int r = 0; r < params.m; ++r) {
      std::vector<std::string> row(params.n);
      for (int c = 0; c < params.n; ++c) {
        if (blank[r * params.n + c]) continue;
        // Keep the first v tokens of the cell.
        std::vector<std::string> tokens = Tokenize(grid[r][c]);
        tokens.resize(
            std::min(tokens.size(), static_cast<size_t>(params.v)));
        row[c] = JoinStrings(tokens, " ");
      }
      et.AddRow(row);
    }
    QBE_CHECK(et.IsWellFormed());
    return et;
  }
  return std::nullopt;
}

std::vector<ExampleTable> EtSource::SampleMany(const EtParams& params,
                                               int count,
                                               uint64_t seed) const {
  QBE_CHECK_MSG(num_matrices() > 0, "no usable matrices");
  std::vector<ExampleTable> out;
  Rng rng(seed);
  int matrix = 0;
  int consecutive_failures = 0;
  while (static_cast<int>(out.size()) < count) {
    QBE_CHECK_MSG(consecutive_failures < 10 * num_matrices(),
                  "no matrix supports the requested ET parameters");
    std::optional<ExampleTable> et =
        Sample(params, matrix % num_matrices(), rng);
    ++matrix;
    if (et.has_value()) {
      out.push_back(std::move(*et));
      consecutive_failures = 0;
    } else {
      ++consecutive_failures;
    }
  }
  return out;
}

}  // namespace qbe
