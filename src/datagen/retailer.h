#ifndef QBE_DATAGEN_RETAILER_H_
#define QBE_DATAGEN_RETAILER_H_

#include "core/example_table.h"
#include "storage/database.h"

namespace qbe {

/// The computer-retailer database of Figure 1, verbatim: dimension tables
/// Customer, Device, App, Employee and fact tables Sales, Owner, ESR with
/// the figure's exact seven relations, foreign keys and tuples. Indexes are
/// built. The paper's worked examples (Figures 2, 4, 6, 7, 8; Examples 1–8)
/// all run against this database, and so do our unit tests.
Database MakeRetailerDatabase();

/// The example table of Figure 2:
///   A            B          C
///   Mike         ThinkPad   Office
///   Mary         iPad
///   Bob                     Dropbox
ExampleTable MakeFigure2ExampleTable();

/// A larger, randomized retailer instance with the same schema, for tests
/// and examples that need more data variety than the 2–3 rows of Figure 1.
Database MakeScaledRetailerDatabase(int customers, int employees, int devices,
                                    int apps, int sales, int owners, int esrs,
                                    uint64_t seed);

}  // namespace qbe

#endif  // QBE_DATAGEN_RETAILER_H_
