#ifndef QBE_DATAGEN_CUST_LIKE_H_
#define QBE_DATAGEN_CUST_LIKE_H_

#include <cstdint>

#include "storage/database.h"

namespace qbe {

/// Configuration for the synthetic CUST-like database — the substitute for
/// the paper's proprietary Fortune-500 customer-support / IT-support data
/// collection (90 GB; see DESIGN.md substitutions). The generated *schema*
/// always matches Table 2's CUST statistics exactly: 100 relations, 63
/// foreign-key edges, 1263 columns of which 614 are text. Structurally it
/// mirrors a real enterprise warehouse: 15 fact tables referencing 30
/// shared dimensions (63 FK edges total) plus 55 standalone auxiliary
/// tables that contribute schema noise — extra candidate projection columns
/// — without joining anything.
struct CustConfig {
  double scale = 1.0;
  uint64_t seed = 5001;
};

inline constexpr int kCustRelations = 100;
inline constexpr int kCustEdges = 63;
inline constexpr int kCustColumns = 1263;
inline constexpr int kCustTextColumns = 614;

Database MakeCustLikeDatabase(const CustConfig& config = {});

}  // namespace qbe

#endif  // QBE_DATAGEN_CUST_LIKE_H_
