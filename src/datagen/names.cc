#include "datagen/names.h"

// Pools are function-local `*new` statics: no global constructors to order,
// trivially "destroyed" (never), per the style rules on static storage.

namespace qbe {

const std::vector<std::string_view>& FirstNames() {
  static const auto& pool = *new std::vector<std::string_view>{
      "Mike",    "Mary",    "Bob",      "Alice",    "John",    "Linda",
      "James",   "Susan",   "Robert",   "Karen",    "David",   "Nancy",
      "William", "Lisa",    "Richard",  "Betty",    "Thomas",  "Helen",
      "Charles", "Sandra",  "Daniel",   "Donna",    "Matthew", "Carol",
      "Anthony", "Ruth",    "Mark",     "Sharon",   "Paul",    "Michelle",
      "Steven",  "Laura",   "Andrew",   "Sarah",    "Kenneth", "Kimberly",
      "George",  "Deborah", "Joshua",   "Jessica",  "Kevin",   "Shirley",
      "Brian",   "Cynthia", "Edward",   "Angela",   "Ronald",  "Melissa",
      "Timothy", "Brenda",  "Jason",    "Amy",      "Jeffrey", "Anna",
      "Ryan",    "Rebecca", "Jacob",    "Virginia", "Gary",    "Kathleen",
      "Nicholas","Pamela",  "Eric",     "Martha",   "Jonathan","Debra",
      "Stephen", "Amanda",  "Larry",    "Stephanie","Justin",  "Carolyn",
      "Scott",   "Christine","Brandon", "Marie",    "Benjamin","Janet",
      "Samuel",  "Catherine","Gregory", "Frances",  "Frank",   "Ann",
      "Alexander","Joyce",  "Raymond",  "Diane",    "Patrick", "Gloria",
      "Jack",    "Julie",   "Dennis",   "Heather",  "Jerry",   "Teresa",
  };
  return pool;
}

const std::vector<std::string_view>& LastNames() {
  static const auto& pool = *new std::vector<std::string_view>{
      "Jones",    "Smith",    "Evans",    "Stone",     "Lee",      "Nash",
      "Brown",    "Johnson",  "Williams", "Miller",    "Davis",    "Garcia",
      "Rodriguez","Wilson",   "Martinez", "Anderson",  "Taylor",   "Thomas",
      "Hernandez","Moore",    "Martin",   "Jackson",   "Thompson", "White",
      "Lopez",    "Gonzalez", "Harris",   "Clark",     "Lewis",    "Robinson",
      "Walker",   "Perez",    "Hall",     "Young",     "Allen",    "Sanchez",
      "Wright",   "King",     "Scott",    "Green",     "Baker",    "Adams",
      "Nelson",   "Hill",     "Ramirez",  "Campbell",  "Mitchell", "Roberts",
      "Carter",   "Phillips", "Turner",   "Torres",    "Parker",   "Collins",
      "Edwards",  "Stewart",  "Flores",   "Morris",    "Nguyen",   "Murphy",
      "Rivera",   "Cook",     "Rogers",   "Morgan",    "Peterson", "Cooper",
      "Reed",     "Bailey",   "Bell",     "Gomez",     "Kelly",    "Howard",
      "Ward",     "Cox",      "Diaz",     "Richardson","Wood",     "Watson",
      "Brooks",   "Bennett",  "Gray",     "James",     "Reyes",    "Cruz",
  };
  return pool;
}

const std::vector<std::string_view>& Nouns() {
  static const auto& pool = *new std::vector<std::string_view>{
      "river",    "mountain", "shadow",  "garden",    "window",   "harbor",
      "engine",   "bridge",   "forest",  "island",    "station",  "market",
      "castle",   "journey",  "mirror",  "anchor",    "beacon",   "canyon",
      "ember",    "falcon",   "glacier", "horizon",   "lantern",  "meadow",
      "nebula",   "orchard",  "prairie", "quarry",    "reef",     "summit",
      "thunder",  "valley",   "willow",  "zephyr",    "archive",  "ballad",
      "compass",  "dynasty",  "eclipse", "fable",     "galaxy",   "harvest",
      "insight",  "jubilee",  "kingdom", "legacy",    "monsoon",  "novella",
      "odyssey",  "paradox",  "quest",   "riddle",    "saga",     "tempest",
      "utopia",   "voyage",   "whisper", "expanse",   "yonder",   "zenith",
      "harbinger","citadel",  "drift",   "origin",    "relay",    "signal",
      "tunnel",   "vault",    "warden",  "expedition","frontier", "garrison",
  };
  return pool;
}

const std::vector<std::string_view>& Adjectives() {
  static const auto& pool = *new std::vector<std::string_view>{
      "silent",   "golden",   "crimson",  "hidden",   "ancient", "broken",
      "distant",  "eternal",  "frozen",   "gentle",   "hollow",  "iron",
      "jagged",   "kindred",  "lunar",    "midnight", "northern","obsidian",
      "pale",     "quiet",    "restless", "savage",   "twilight","umber",
      "vivid",    "wandering","young",    "zealous",  "amber",   "bitter",
      "crystal",  "dusty",    "emerald",  "fleeting", "grand",   "humble",
      "infinite", "jade",     "keen",     "lost",     "mystic",  "noble",
      "outer",    "proud",    "quaint",   "rising",   "scarlet", "timeless",
      "unseen",   "velvet",   "wild",     "azure",    "burning", "cobalt",
  };
  return pool;
}

const std::vector<std::string_view>& Verbs() {
  static const auto& pool = *new std::vector<std::string_view>{
      "crash",   "sync",     "install",  "update",   "restart", "connect",
      "freeze",  "render",   "upload",   "download", "restore", "configure",
      "launch",  "migrate",  "deploy",   "backup",   "encrypt", "compile",
      "resolve", "escalate", "timeout",  "overheat", "reboot",  "authenticate",
  };
  return pool;
}

const std::vector<std::string_view>& Places() {
  static const auto& pool = *new std::vector<std::string_view>{
      "London",   "Paris",    "Berlin",  "Tokyo",     "Sydney",  "Toronto",
      "Chicago",  "Seattle",  "Austin",  "Denver",    "Boston",  "Atlanta",
      "Madrid",   "Rome",     "Vienna",  "Oslo",      "Dublin",  "Prague",
      "Lisbon",   "Helsinki", "Zurich",  "Geneva",    "Mumbai",  "Singapore",
      "Portland", "Phoenix",  "Dallas",  "Houston",   "Nairobi", "Cairo",
  };
  return pool;
}

const std::vector<std::string_view>& CompanyWords() {
  static const auto& pool = *new std::vector<std::string_view>{
      "Global",  "United",   "Pacific",  "Northern",  "Summit",  "Pioneer",
      "Vertex",  "Quantum",  "Sterling", "Atlas",     "Orion",   "Nova",
      "Apex",    "Crescent", "Dynamo",   "Equinox",   "Fusion",  "Gateway",
      "Horizon", "Keystone", "Liberty",  "Meridian",  "Nimbus",  "Octave",
      "Paragon", "Radiant",  "Sapphire", "Titan",     "Vanguard","Zenith",
      "Systems", "Media",    "Pictures", "Studios",   "Holdings","Partners",
      "Labs",    "Works",    "Group",    "Industries","Networks","Dynamics",
  };
  return pool;
}

const std::vector<std::string_view>& GenreWords() {
  static const auto& pool = *new std::vector<std::string_view>{
      "drama",   "comedy",  "thriller",    "romance",   "horror", "western",
      "mystery", "fantasy", "adventure",   "animation", "crime",  "biography",
      "musical", "war",     "documentary", "noir",      "family", "history",
      "sport",   "scifi",
  };
  return pool;
}

const std::vector<std::string_view>& TechWords() {
  static const auto& pool = *new std::vector<std::string_view>{
      "laptop",   "tablet",   "phone",    "monitor",  "keyboard", "printer",
      "router",   "server",   "docking",  "adapter",  "battery",  "charger",
      "headset",  "webcam",   "scanner",  "firewall", "antivirus","spreadsheet",
      "editor",   "browser",  "mailbox",  "calendar", "notebook", "dashboard",
      "terminal", "compiler", "database", "storage",  "backup",   "archive",
  };
  return pool;
}

}  // namespace qbe
