#ifndef QBE_DATAGEN_ET_GEN_H_
#define QBE_DATAGEN_ET_GEN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/example_table.h"
#include "exec/executor.h"
#include "schema/schema_graph.h"
#include "storage/database.h"
#include "util/rng.h"

namespace qbe {

/// ET generation parameters (§6.1, Table 3). Defaults are the paper's
/// underlined default values.
struct EtParams {
  int m = 3;       // rows
  int n = 3;       // columns
  double s = 0.3;  // sparsity: fraction of empty cells
  int v = 2;       // tokens kept per non-empty cell
};

/// Example-table source following §6.1's procedure: choose `num_matrices`
/// meaningful join graphs over the schema (each with more than
/// `min_text_cols − 1` text columns), execute each join projected onto all
/// its text columns to obtain a matrix, then sample ETs from the matrices:
///
///   1. pick m random complete rows and n random columns,
///   2. blank ⌊m·n·s⌋ random cells,
///   3. reject-and-retry if a row or column became fully empty, then keep
///      the first v tokens of every remaining cell.
///
/// Sampling is deterministic given the seeds; SampleMany rotates over the
/// matrices (the paper generates 5 ETs from each of its 10 matrices).
class EtSource {
 public:
  struct Options {
    int num_matrices = 10;
    int min_text_cols = 7;    // "more than 6 text columns"
    int max_tree_size = 4;
    size_t matrix_row_cap = 4000;
    size_t min_matrix_rows = 12;
  };

  EtSource(const Database& db, const SchemaGraph& graph, const Executor& exec,
           uint64_t seed, const Options& options);

  /// Default options.
  EtSource(const Database& db, const SchemaGraph& graph, const Executor& exec,
           uint64_t seed)
      : EtSource(db, graph, exec, seed, Options()) {}

  int num_matrices() const { return static_cast<int>(matrices_.size()); }

  /// Number of usable (complete, distinct) rows in matrix `index`.
  size_t matrix_rows(int index) const { return matrices_[index].rows.size(); }

  /// One ET from matrix `index`; nullopt if the matrix cannot support the
  /// parameters (too few rows/columns) or sparsification keeps failing.
  std::optional<ExampleTable> Sample(const EtParams& params, int index,
                                     Rng& rng) const;

  /// `count` ETs rotating over the matrices. Always returns exactly `count`
  /// tables (skips matrices that cannot support the parameters; check-fails
  /// only if none can).
  std::vector<ExampleTable> SampleMany(const EtParams& params, int count,
                                       uint64_t seed) const;

 private:
  struct Matrix {
    std::vector<std::vector<std::string>> rows;
    int num_cols = 0;
  };

  std::vector<Matrix> matrices_;
};

}  // namespace qbe

#endif  // QBE_DATAGEN_ET_GEN_H_
