#include "datagen/retailer.h"

#include "datagen/names.h"
#include "datagen/text_gen.h"
#include "util/rng.h"

namespace qbe {
namespace {

Relation MakeDimension(const std::string& name, const std::string& pk,
                       const std::string& text_col) {
  return Relation(name, {{pk, ColumnType::kId}, {text_col, ColumnType::kText}});
}

void AddRetailerSchema(Database& db, Relation customer, Relation device,
                       Relation app, Relation employee, Relation sales,
                       Relation owner, Relation esr) {
  db.AddRelation(std::move(customer));
  db.AddRelation(std::move(device));
  db.AddRelation(std::move(app));
  db.AddRelation(std::move(employee));
  db.AddRelation(std::move(sales));
  db.AddRelation(std::move(owner));
  db.AddRelation(std::move(esr));
  db.AddForeignKey("Sales", "CustId", "Customer", "CustId");
  db.AddForeignKey("Sales", "DevId", "Device", "DevId");
  db.AddForeignKey("Sales", "AppId", "App", "AppId");
  db.AddForeignKey("Owner", "EmpId", "Employee", "EmpId");
  db.AddForeignKey("Owner", "DevId", "Device", "DevId");
  db.AddForeignKey("Owner", "AppId", "App", "AppId");
  db.AddForeignKey("ESR", "EmpId", "Employee", "EmpId");
  db.AddForeignKey("ESR", "AppId", "App", "AppId");
}

Relation MakeSalesRelation() {
  return Relation("Sales", {{"SId", ColumnType::kId},
                            {"CustId", ColumnType::kId},
                            {"DevId", ColumnType::kId},
                            {"AppId", ColumnType::kId}});
}

Relation MakeOwnerRelation() {
  return Relation("Owner", {{"OId", ColumnType::kId},
                            {"EmpId", ColumnType::kId},
                            {"DevId", ColumnType::kId},
                            {"AppId", ColumnType::kId}});
}

Relation MakeEsrRelation() {
  return Relation("ESR", {{"ESRId", ColumnType::kId},
                          {"EmpId", ColumnType::kId},
                          {"AppId", ColumnType::kId},
                          {"Desc", ColumnType::kText}});
}

}  // namespace

Database MakeRetailerDatabase() {
  Relation customer = MakeDimension("Customer", "CustId", "CustName");
  customer.AppendRow({int64_t{1}, std::string("Mike Jones")});
  customer.AppendRow({int64_t{2}, std::string("Mary Smith")});
  customer.AppendRow({int64_t{3}, std::string("Bob Evans")});

  Relation device = MakeDimension("Device", "DevId", "DevName");
  device.AppendRow({int64_t{1}, std::string("ThinkPad X1")});
  device.AppendRow({int64_t{2}, std::string("iPad Air")});
  device.AppendRow({int64_t{3}, std::string("Nexus 7")});

  Relation app = MakeDimension("App", "AppId", "AppName");
  app.AppendRow({int64_t{1}, std::string("Office 2013")});
  app.AppendRow({int64_t{2}, std::string("Evernote")});
  app.AppendRow({int64_t{3}, std::string("Dropbox")});

  Relation employee = MakeDimension("Employee", "EmpId", "EmpName");
  employee.AppendRow({int64_t{1}, std::string("Mike Stone")});
  employee.AppendRow({int64_t{2}, std::string("Mary Lee")});
  employee.AppendRow({int64_t{3}, std::string("Bob Nash")});

  Relation sales = MakeSalesRelation();
  sales.AppendRow({int64_t{1}, int64_t{1}, int64_t{1}, int64_t{1}});
  sales.AppendRow({int64_t{2}, int64_t{2}, int64_t{2}, int64_t{2}});
  sales.AppendRow({int64_t{3}, int64_t{3}, int64_t{3}, int64_t{3}});

  Relation owner = MakeOwnerRelation();
  owner.AppendRow({int64_t{1}, int64_t{1}, int64_t{1}, int64_t{1}});
  owner.AppendRow({int64_t{2}, int64_t{2}, int64_t{3}, int64_t{3}});
  owner.AppendRow({int64_t{3}, int64_t{3}, int64_t{2}, int64_t{2}});

  Relation esr = MakeEsrRelation();
  esr.AppendRow(
      {int64_t{1}, int64_t{1}, int64_t{1}, std::string("Office crash")});
  esr.AppendRow(
      {int64_t{2}, int64_t{2}, int64_t{3}, std::string("Dropbox can't sync")});

  Database db;
  AddRetailerSchema(db, std::move(customer), std::move(device), std::move(app),
                    std::move(employee), std::move(sales), std::move(owner),
                    std::move(esr));
  db.BuildIndexes();
  return db;
}

ExampleTable MakeFigure2ExampleTable() {
  ExampleTable et({"A", "B", "C"});
  et.AddRow({"Mike", "ThinkPad", "Office"});
  et.AddRow({"Mary", "iPad", ""});
  et.AddRow({"Bob", "", "Dropbox"});
  return et;
}

Database MakeScaledRetailerDatabase(int customers, int employees, int devices,
                                    int apps, int sales, int owners, int esrs,
                                    uint64_t seed) {
  Rng rng(seed);
  TextGenerator text;

  Relation customer = MakeDimension("Customer", "CustId", "CustName");
  for (int i = 1; i <= customers; ++i) {
    customer.AppendRow({int64_t{i}, text.PersonName(rng)});
  }
  Relation device = MakeDimension("Device", "DevId", "DevName");
  for (int i = 1; i <= devices; ++i) {
    device.AppendRow({int64_t{i}, text.ProductName(rng)});
  }
  Relation app = MakeDimension("App", "AppId", "AppName");
  for (int i = 1; i <= apps; ++i) {
    std::string name(text.Word(rng, TechWords()));
    name += ' ';
    name += std::to_string(rng.NextInRange(1, 30));
    app.AppendRow({int64_t{i}, std::move(name)});
  }
  Relation employee = MakeDimension("Employee", "EmpId", "EmpName");
  for (int i = 1; i <= employees; ++i) {
    employee.AppendRow({int64_t{i}, text.PersonName(rng)});
  }
  Relation sales_rel = MakeSalesRelation();
  for (int i = 1; i <= sales; ++i) {
    sales_rel.AppendRow({int64_t{i}, rng.NextInRange(1, customers),
                         rng.NextInRange(1, devices),
                         rng.NextInRange(1, apps)});
  }
  Relation owner_rel = MakeOwnerRelation();
  for (int i = 1; i <= owners; ++i) {
    owner_rel.AppendRow({int64_t{i}, rng.NextInRange(1, employees),
                         rng.NextInRange(1, devices),
                         rng.NextInRange(1, apps)});
  }
  Relation esr = MakeEsrRelation();
  for (int i = 1; i <= esrs; ++i) {
    std::string desc(text.Word(rng, TechWords()));
    desc += ' ';
    desc += text.Word(rng, Verbs());
    esr.AppendRow({int64_t{i}, rng.NextInRange(1, employees),
                   rng.NextInRange(1, apps), std::move(desc)});
  }

  Database db;
  AddRetailerSchema(db, std::move(customer), std::move(device), std::move(app),
                    std::move(employee), std::move(sales_rel),
                    std::move(owner_rel), std::move(esr));
  db.BuildIndexes();
  return db;
}

}  // namespace qbe
