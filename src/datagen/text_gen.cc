#include "datagen/text_gen.h"

#include "datagen/names.h"

namespace qbe {

TextGenerator::TextGenerator(double zipf_theta)
    : theta_(zipf_theta),
      first_(FirstNames().size(), zipf_theta),
      last_(LastNames().size(), zipf_theta),
      noun_(Nouns().size(), zipf_theta),
      adjective_(Adjectives().size(), zipf_theta),
      verb_(Verbs().size(), zipf_theta),
      place_(Places().size(), zipf_theta),
      company_(CompanyWords().size(), zipf_theta),
      genre_(GenreWords().size(), zipf_theta),
      tech_(TechWords().size(), zipf_theta) {}

std::string TextGenerator::PersonName(Rng& rng) const {
  std::string name(FirstNames()[first_.Sample(rng)]);
  name += ' ';
  name += LastNames()[last_.Sample(rng)];
  return name;
}

std::string TextGenerator::TitlePhrase(Rng& rng, int max_words) const {
  // Half the titles carry the leading article; the bare "adjective noun"
  // form overlaps with keyword and note vocabulary at the phrase level.
  std::string title = rng.NextBool(0.5) ? "the " : "";
  title += Adjectives()[adjective_.Sample(rng)];
  title += ' ';
  title += Nouns()[noun_.Sample(rng)];
  if (max_words > 3 && rng.NextBool(0.4)) {
    title += ' ';
    title += Nouns()[noun_.Sample(rng)];
  }
  return title;
}

std::string TextGenerator::NotePhrase(Rng& rng, int min_words,
                                      int max_words) const {
  int n = static_cast<int>(rng.NextInRange(min_words, max_words));
  std::string note;
  int words = 0;
  while (words < n) {
    if (words > 0) note += ' ';
    if (words + 2 <= n && rng.NextBool(0.25)) {
      // Adjective-noun bigram — the same shape title phrases use, so notes
      // and titles overlap at the phrase level like real prose (taglines
      // quoting titles, plot words, etc.).
      note += Adjectives()[adjective_.Sample(rng)];
      note += ' ';
      note += Nouns()[noun_.Sample(rng)];
      words += 2;
      continue;
    }
    switch (rng.NextBounded(3)) {
      case 0:
        note += Nouns()[noun_.Sample(rng)];
        break;
      case 1:
        note += Adjectives()[adjective_.Sample(rng)];
        break;
      default:
        note += Verbs()[verb_.Sample(rng)];
        break;
    }
    words += 1;
  }
  return note;
}

std::string TextGenerator::CompanyName(Rng& rng) const {
  std::string name(CompanyWords()[company_.Sample(rng)]);
  name += ' ';
  name += CompanyWords()[company_.Sample(rng)];
  return name;
}

std::string TextGenerator::ProductName(Rng& rng) const {
  std::string name(CompanyWords()[company_.Sample(rng)]);
  name += ' ';
  name += TechWords()[tech_.Sample(rng)];
  name += ' ';
  name += std::to_string(rng.NextInRange(1, 99));
  return name;
}

std::string TextGenerator::Place(Rng& rng) const {
  return std::string(Places()[place_.Sample(rng)]);
}

std::string TextGenerator::Genre(Rng& rng) const {
  return std::string(GenreWords()[genre_.Sample(rng)]);
}

std::string_view TextGenerator::Word(
    Rng& rng, const std::vector<std::string_view>& pool) const {
  ZipfSampler sampler(pool.size(), theta_);
  return pool[sampler.Sample(rng)];
}

}  // namespace qbe
