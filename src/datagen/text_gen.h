#ifndef QBE_DATAGEN_TEXT_GEN_H_
#define QBE_DATAGEN_TEXT_GEN_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/zipf.h"

namespace qbe {

/// Synthetic text generator shared by the dataset builders. Draws are
/// Zipfian over the word pools so token selectivities resemble natural
/// language (a few common words, a long tail), which matters for the
/// experiments: candidate-column ambiguity and CQ-row verification cost
/// both depend on how often tokens repeat within and across columns.
class TextGenerator {
 public:
  explicit TextGenerator(double zipf_theta = 1.2);

  /// "First Last" person names; the pool is shared across every dataset's
  /// person-like columns so the same name shows up in many columns.
  std::string PersonName(Rng& rng) const;

  /// Title-style phrase: "the <adjective> <noun> [<noun>]".
  std::string TitlePhrase(Rng& rng, int max_words = 3) const;

  /// Free-text note of `min_words`..`max_words` tokens from the noun /
  /// adjective / verb pools.
  std::string NotePhrase(Rng& rng, int min_words, int max_words) const;

  /// Company-style name, e.g. "Quantum Pictures".
  std::string CompanyName(Rng& rng) const;

  /// Product/device-style name, e.g. "Vertex laptop 42".
  std::string ProductName(Rng& rng) const;

  std::string Place(Rng& rng) const;
  std::string Genre(Rng& rng) const;

  /// One Zipf-drawn word from an arbitrary pool.
  std::string_view Word(Rng& rng, const std::vector<std::string_view>& pool)
      const;

 private:
  double theta_;
  ZipfSampler first_, last_, noun_, adjective_, verb_, place_, company_,
      genre_, tech_;
};

}  // namespace qbe

#endif  // QBE_DATAGEN_TEXT_GEN_H_
