#include "datagen/cust_like.h"

#include <algorithm>
#include <string>
#include <vector>

#include "datagen/names.h"
#include "datagen/text_gen.h"
#include "util/check.h"
#include "util/rng.h"

namespace qbe {
namespace {

constexpr int kNumFacts = 15;
constexpr int kNumDims = 30;
constexpr int kNumStandalone = 55;

/// Text-column content domains. Cycling columns through a small set of
/// shared domains reproduces the key property of real enterprise text: the
/// same customer / product / city names recur in many unrelated columns, so
/// an ET value rarely pins down a single candidate projection column.
enum class Domain {
  kPerson,
  kCompany,
  kProduct,
  kPlace,
  kNote,
  kIssue,
  kStatus,
};

constexpr Domain kDomainCycle[] = {
    Domain::kPerson, Domain::kNote,  Domain::kProduct, Domain::kPlace,
    Domain::kIssue,  Domain::kCompany, Domain::kStatus,
};

/// `salt` differentiates relations for the low-cardinality domains: a
/// status or site column drawing from one tiny global vocabulary would
/// match *every* same-domain column in the schema and blow the candidate
/// counts far past the paper's — real warehouses use per-application
/// status vocabularies and per-site location codes.
std::string DomainValue(Domain domain, const TextGenerator& text, Rng& rng,
                        int salt) {
  switch (domain) {
    case Domain::kPerson:
      return text.PersonName(rng);
    case Domain::kCompany:
      return text.CompanyName(rng);
    case Domain::kProduct:
      return text.ProductName(rng);
    case Domain::kPlace: {
      // City plus a site code drawn from a relation-biased range.
      std::string place = text.Place(rng);
      place += " site ";
      place += std::to_string((salt * 7 + rng.NextInRange(0, 9)) % 60);
      return place;
    }
    case Domain::kNote:
      return text.NotePhrase(rng, 2, 5);
    case Domain::kIssue: {
      std::string issue(text.Word(rng, TechWords()));
      issue += ' ';
      issue += text.Word(rng, Verbs());
      return issue;
    }
    case Domain::kStatus: {
      static constexpr const char* kStatuses[] = {
          "open",      "closed",    "pending",    "resolved",
          "escalated", "assigned",  "duplicate",  "wontfix",
          "triaged",   "deferred",  "reopened",   "blocked",
          "verified",  "rejected",  "in review",  "on hold"};
      // Each relation's workflow uses its own 4-state subset.
      return kStatuses[(salt * 3 + rng.NextBounded(4)) % 16];
    }
  }
  return "";
}

const char* DomainColumnName(Domain domain) {
  switch (domain) {
    case Domain::kPerson:
      return "person";
    case Domain::kCompany:
      return "company";
    case Domain::kProduct:
      return "product";
    case Domain::kPlace:
      return "location";
    case Domain::kNote:
      return "note";
    case Domain::kIssue:
      return "issue";
    case Domain::kStatus:
      return "status";
  }
  return "text";
}

struct RelationPlan {
  std::string name;
  int rows;
  std::vector<int> fk_targets;  // dimension indices (facts only)
  int extra_ids;                // id columns beyond pk and fks
  int text_cols;
};

}  // namespace

Database MakeCustLikeDatabase(const CustConfig& config) {
  Rng rng(config.seed);
  TextGenerator text(0.55);
  // Standalone aux tables draw from the same pools but near-uniformly: in a
  // real warehouse an ET value rarely pins down an unrelated log/config
  // table, because those tables hold their own long-tail identifiers. With
  // Zipf-heavy aux content every common name would satisfy the column
  // constraint in dozens of aux columns and candidate counts explode far
  // beyond the paper's.
  TextGenerator aux_text(0.15);

  auto scaled = [&](int base) {
    return std::max(8, static_cast<int>(base * config.scale));
  };

  // ---- plan the schema so the Table 2 statistics come out exactly --------
  // Facts: pk + fks + 1 measure id + 4 text. The first three facts carry a
  // fifth FK: 3*5 + 12*4 = 63 edges.
  // Dims: pk + 1 extra id + 6 text.
  // Standalone: 9 ids (10 for the first) + 6 text (7 for the first 44).
  // Totals: ids 3*7+12*6 + 30*2 + 54*9+10 = 649; text 15*4+30*6+374 = 614;
  // columns 649 + 614 = 1263 over 15 + 30 + 55 = 100 relations.
  std::vector<RelationPlan> plans;
  for (int d = 0; d < kNumDims; ++d) {
    plans.push_back(RelationPlan{"dim_" + std::to_string(d),
                                 scaled(300 + 40 * (d % 7)),
                                 {},
                                 1,
                                 6});
  }
  for (int f = 0; f < kNumFacts; ++f) {
    RelationPlan plan;
    plan.name = "fact_" + std::to_string(f);
    plan.rows = scaled(2000 + 300 * (f % 5));
    int num_fks = f < 3 ? 5 : 4;
    for (int k = 0; k < num_fks; ++k) {
      plan.fk_targets.push_back((f * 4 + k * 7) % kNumDims);
    }
    // Multiple FKs from one fact to the same dimension are legal (labeled
    // edges) but make column naming awkward; deduplicate targets.
    std::sort(plan.fk_targets.begin(), plan.fk_targets.end());
    for (size_t k = 1; k < plan.fk_targets.size(); ++k) {
      while (std::find(plan.fk_targets.begin(), plan.fk_targets.begin() + k,
                       plan.fk_targets[k]) != plan.fk_targets.begin() + k) {
        plan.fk_targets[k] = (plan.fk_targets[k] + 1) % kNumDims;
      }
    }
    plan.extra_ids = 1;
    plan.text_cols = 4;
    plans.push_back(std::move(plan));
  }
  for (int a = 0; a < kNumStandalone; ++a) {
    plans.push_back(RelationPlan{"aux_" + std::to_string(a),
                                 scaled(100 + 20 * (a % 9)),
                                 {},
                                 a == 0 ? 9 : 8,
                                 a < 44 ? 7 : 6});
  }
  QBE_CHECK(static_cast<int>(plans.size()) == kCustRelations);

  // ---- create relations ---------------------------------------------------
  Database db;
  int domain_cursor = 0;
  std::vector<std::vector<Domain>> text_domains(plans.size());
  std::vector<int> dim_rows(kNumDims);
  for (size_t p = 0; p < plans.size(); ++p) {
    const RelationPlan& plan = plans[p];
    if (p < kNumDims) dim_rows[p] = plan.rows;
    std::vector<ColumnDef> defs;
    defs.push_back(ColumnDef{plan.name + "_id", ColumnType::kId});
    for (size_t k = 0; k < plan.fk_targets.size(); ++k) {
      defs.push_back(ColumnDef{"dim_" + std::to_string(plan.fk_targets[k]) +
                                   "_id",
                               ColumnType::kId});
    }
    for (int k = 0; k < plan.extra_ids; ++k) {
      defs.push_back(ColumnDef{"num" + std::to_string(k), ColumnType::kId});
    }
    constexpr int kNumDomains =
        sizeof(kDomainCycle) / sizeof(kDomainCycle[0]);
    for (int k = 0; k < plan.text_cols; ++k) {
      // Dimensions are themed like real warehouse dims (a customer dim is
      // mostly person columns, a product dim mostly product columns): they
      // alternate between a primary and a secondary domain. Facts and aux
      // tables cycle through all domains.
      Domain domain;
      if (p < kNumDims) {
        Domain primary = kDomainCycle[p % kNumDomains];
        Domain secondary = kDomainCycle[(p + 3) % kNumDomains];
        domain = k % 3 == 2 ? secondary : primary;
      } else {
        domain = kDomainCycle[domain_cursor++ % kNumDomains];
      }
      text_domains[p].push_back(domain);
      std::string col_name = DomainColumnName(domain);
      int uses = static_cast<int>(
          std::count(text_domains[p].begin(), text_domains[p].end(), domain));
      if (uses > 1) col_name += std::to_string(uses);
      defs.push_back(ColumnDef{std::move(col_name), ColumnType::kText});
    }
    db.AddRelation(Relation(plan.name, std::move(defs)));
  }

  // ---- foreign keys --------------------------------------------------------
  int edges = 0;
  for (size_t p = kNumDims; p < kNumDims + kNumFacts; ++p) {
    const RelationPlan& plan = plans[p];
    for (int target : plan.fk_targets) {
      std::string dim = "dim_" + std::to_string(target);
      db.AddForeignKey(plan.name, dim + "_id", dim, dim + "_id");
      ++edges;
    }
  }
  QBE_CHECK(edges == kCustEdges);

  // ---- populate ------------------------------------------------------------
  for (size_t p = 0; p < plans.size(); ++p) {
    const RelationPlan& plan = plans[p];
    Relation& rel = db.mutable_relation(static_cast<int>(p));
    for (int row = 1; row <= plan.rows; ++row) {
      std::vector<Value> values;
      values.emplace_back(int64_t{row});
      for (int target : plan.fk_targets) {
        values.emplace_back(rng.NextInRange(1, dim_rows[target]));
      }
      for (int k = 0; k < plan.extra_ids; ++k) {
        values.emplace_back(rng.NextInRange(0, 99999));
      }
      // Value distributions: the *first* column of a domain in a relation
      // draws from the shared Zipf-heavy pools (cross-relation ambiguity);
      // repeat columns of the same domain and all aux tables draw from the
      // near-uniform long tail. Without this, a dim with four person
      // columns would give every ET person value four interchangeable
      // mappings inside one relation and candidate counts would explode
      // combinatorially (real warehouse dims have one primary name column,
      // not four equally-likely ones).
      bool domain_seen[8] = {};
      bool is_aux = plan.name[0] == 'a';  // aux_* vs dim_*/fact_*
      for (Domain domain : text_domains[p]) {
        bool first_use = !domain_seen[static_cast<int>(domain)];
        domain_seen[static_cast<int>(domain)] = true;
        // Primary columns mix head and tail draws (real enterprise columns
        // hold mostly their own long-tail identifiers plus some globally
        // common values); repeats and aux tables are tail-only.
        bool head = !is_aux && first_use && rng.NextBool(0.35);
        const TextGenerator& gen = head ? text : aux_text;
        values.emplace_back(
            DomainValue(domain, gen, rng, static_cast<int>(p)));
      }
      rel.AppendRow(values);
    }
  }

  db.BuildIndexes();
  return db;
}

}  // namespace qbe
