#ifndef QBE_DATAGEN_NAMES_H_
#define QBE_DATAGEN_NAMES_H_

#include <string_view>
#include <vector>

namespace qbe {

/// Shared word pools for the synthetic datasets. Several pools are reused
/// across unrelated columns on purpose: the paper's candidate ambiguity —
/// 'Mike' matching both Customer.CustName and Employee.EmpName in Example 1
/// — only arises when the same tokens appear in multiple text columns, and
/// that ambiguity is what makes candidate verification expensive.
const std::vector<std::string_view>& FirstNames();
const std::vector<std::string_view>& LastNames();
const std::vector<std::string_view>& Nouns();
const std::vector<std::string_view>& Adjectives();
const std::vector<std::string_view>& Verbs();
const std::vector<std::string_view>& Places();
const std::vector<std::string_view>& CompanyWords();
const std::vector<std::string_view>& GenreWords();
const std::vector<std::string_view>& TechWords();

}  // namespace qbe

#endif  // QBE_DATAGEN_NAMES_H_
