#ifndef QBE_DATAGEN_IMDB_LIKE_H_
#define QBE_DATAGEN_IMDB_LIKE_H_

#include <cstdint>

#include "storage/database.h"

namespace qbe {

/// Configuration for the synthetic IMDB-like database. The *schema* always
/// matches Table 2's IMDB statistics exactly — 21 relations, 22 foreign-key
/// edges, 101 columns of which 42 are text — while `scale` multiplies the
/// default row counts (scale 1.0 ≈ 60k rows total, sized so that a full
/// experiment sweep runs in seconds on one core; the paper's 10 GB instance
/// is substituted per DESIGN.md).
struct ImdbConfig {
  double scale = 1.0;
  uint64_t seed = 20140622;  // SIGMOD'14 started June 22
};

/// Expected Table 2 statistics, asserted by tests and printed by the
/// dataset bench.
inline constexpr int kImdbRelations = 21;
inline constexpr int kImdbEdges = 22;
inline constexpr int kImdbColumns = 101;
inline constexpr int kImdbTextColumns = 42;

/// Builds the database (with indexes) — people, movies, companies,
/// keywords and the fact tables linking them, populated with shared-pool
/// synthetic text so person/character/aka names and title/keyword/note
/// tokens overlap across columns the way real IMDB text does.
Database MakeImdbLikeDatabase(const ImdbConfig& config = {});

}  // namespace qbe

#endif  // QBE_DATAGEN_IMDB_LIKE_H_
