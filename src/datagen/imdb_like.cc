#include "datagen/imdb_like.h"

#include <algorithm>

#include "datagen/names.h"
#include "datagen/text_gen.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace qbe {
namespace {

constexpr ColumnType kI = ColumnType::kId;
constexpr ColumnType kT = ColumnType::kText;

int Scaled(double scale, int base) {
  return std::max(4, static_cast<int>(base * scale));
}

/// Phonetic-code-like token derived from a name ("Mike Jones" -> "mike4"),
/// mimicking IMDB's name_pcode columns: searchable, short, moderately
/// selective.
std::string Pcode(const std::string& text) {
  std::vector<std::string> tokens = Tokenize(text);
  if (tokens.empty()) return "x0";
  std::string code = tokens[0].substr(0, 4);
  code += std::to_string(tokens.size() > 1 ? tokens[1].size() % 10
                                           : tokens[0].size() % 10);
  return code;
}

}  // namespace

Database MakeImdbLikeDatabase(const ImdbConfig& config) {
  Rng rng(config.seed);
  TextGenerator text;
  Database db;

  // ---- dimension-side relations -----------------------------------------
  // person: 2 id + 3 text
  Relation person("person", {{"person_id", kI},
                             {"pname", kT},
                             {"gender", kT},
                             {"name_pcode", kT},
                             {"birth_year", kI},
                             {"imdb_id", kI}});
  const int n_person = Scaled(config.scale, 3000);
  std::vector<std::string> person_names;
  person_names.reserve(n_person);
  for (int i = 1; i <= n_person; ++i) {
    std::string name = text.PersonName(rng);
    person.AppendRow({int64_t{i}, name,
                      std::string(rng.NextBool(0.5) ? "male" : "female"),
                      Pcode(name), rng.NextInRange(1920, 2005),
                      rng.NextInRange(1, 999999)});
    person_names.push_back(std::move(name));
  }
  db.AddRelation(std::move(person));

  // char_name: 2 id + 2 text — character names draw from the same person
  // name pools, so 'Mike' is ambiguous between person.pname and
  // char_name.cname exactly like Example 1's Customer/Employee ambiguity.
  Relation char_name("char_name", {{"char_id", kI},
                                   {"cname", kT},
                                   {"cname_pcode", kT},
                                   {"imdb_id", kI}});
  const int n_char = Scaled(config.scale, 2000);
  for (int i = 1; i <= n_char; ++i) {
    // Characters are frequently named after real people: reuse person
    // names outright so full "First Last" values recur across columns.
    std::string name = rng.NextBool(0.9)
                           ? person_names[rng.NextBounded(person_names.size())]
                           : text.PersonName(rng);
    char_name.AppendRow(
        {int64_t{i}, name, Pcode(name), rng.NextInRange(1, 999999)});
  }
  db.AddRelation(std::move(char_name));

  // company: 2 id + 3 text
  Relation company("company", {{"company_id", kI},
                               {"cmpname", kT},
                               {"country", kT},
                               {"cmpname_pcode", kT},
                               {"imdb_id", kI}});
  const int n_company = Scaled(config.scale, 800);
  for (int i = 1; i <= n_company; ++i) {
    std::string name = text.CompanyName(rng);
    company.AppendRow({int64_t{i}, name, text.Place(rng), Pcode(name),
                       rng.NextInRange(1, 999999)});
  }
  db.AddRelation(std::move(company));

  // Small lookup dimensions: 1 id + 2 text each.
  struct Lookup {
    const char* rel;
    const char* pk;
    const char* col;
    std::vector<std::string> values;
  };
  std::vector<Lookup> lookups;
  lookups.push_back({"company_type", "ctype_id", "ckind",
                     {"production companies", "distributors",
                      "special effects companies", "miscellaneous companies"}});
  lookups.push_back({"kind_type", "kind_id", "kind",
                     {"movie", "tv series", "tv movie", "video movie",
                      "tv mini series", "video game", "episode"}});
  lookups.push_back({"role_type", "role_id", "role",
                     {"actor", "actress", "producer", "writer",
                      "cinematographer", "composer", "costume designer",
                      "director", "editor", "miscellaneous crew",
                      "production designer", "guest"}});
  lookups.push_back(
      {"link_type", "ltype_id", "link",
       {"follows", "followed by", "remake of", "remade as", "references",
        "referenced in", "spoofs", "spoofed in", "features", "featured in",
        "spin off from", "spin off", "version of", "similar to",
        "edited into", "edited from", "alternate language version of",
        "unknown link"}});
  {
    Lookup info{"info_type", "itype_id", "info", {}};
    const auto& nouns = Nouns();
    for (int i = 0; i < 40; ++i) info.values.emplace_back(nouns[i]);
    lookups.push_back(std::move(info));
  }
  for (Lookup& lookup : lookups) {
    Relation rel(lookup.rel, {{lookup.pk, kI},
                              {lookup.col, kT},
                              {"description", kT}});
    for (size_t i = 0; i < lookup.values.size(); ++i) {
      rel.AppendRow({static_cast<int64_t>(i + 1), lookup.values[i],
                     text.NotePhrase(rng, 2, 4)});
    }
    db.AddRelation(std::move(rel));
  }
  const int n_kind = 7;
  const int n_ctype = 4;
  const int n_role = 12;
  const int n_ltype = 18;
  const int n_itype = 40;

  // keyword: 1 id + 2 text — keywords reuse noun/adjective pools so they
  // collide with title and note tokens.
  Relation keyword("keyword", {{"keyword_id", kI},
                               {"kw", kT},
                               {"kw_pcode", kT}});
  const int n_keyword = Scaled(config.scale, 1500);
  for (int i = 1; i <= n_keyword; ++i) {
    std::string kw(text.Word(rng, Nouns()));
    if (rng.NextBool(0.4)) {
      kw = std::string(text.Word(rng, Adjectives())) + " " + kw;
    }
    keyword.AppendRow({int64_t{i}, kw, Pcode(kw)});
  }
  db.AddRelation(std::move(keyword));

  // title: 6 id + 2 text
  Relation title("title", {{"movie_id", kI},
                           {"mtitle", kT},
                           {"kind_id", kI},
                           {"title_pcode", kT},
                           {"production_year", kI},
                           {"imdb_id", kI},
                           {"episode_nr", kI},
                           {"season_nr", kI}});
  const int n_title = Scaled(config.scale, 4000);
  std::vector<std::string> titles;
  titles.reserve(n_title);
  for (int i = 1; i <= n_title; ++i) {
    std::string name = text.TitlePhrase(rng, 4);
    title.AppendRow({int64_t{i}, name, rng.NextInRange(1, n_kind),
                     Pcode(name), rng.NextInRange(1920, 2014),
                     rng.NextInRange(1, 999999), rng.NextInRange(0, 24),
                     rng.NextInRange(0, 9)});
    titles.push_back(std::move(name));
  }
  db.AddRelation(std::move(title));

  // ---- fact-side relations ----------------------------------------------
  // aka_name: 2 id + 2 text; alternative person names usually echo the
  // referenced person's real name — heavy cross-column value overlap.
  Relation aka_name("aka_name", {{"akaname_id", kI},
                                 {"person_id", kI},
                                 {"aname", kT},
                                 {"aname_pcode", kT}});
  const int n_aka_name = Scaled(config.scale, 1500);
  for (int i = 1; i <= n_aka_name; ++i) {
    int64_t pid = rng.NextInRange(1, n_person);
    std::string name = rng.NextBool(0.9) ? person_names[pid - 1]
                                          : text.PersonName(rng);
    aka_name.AppendRow({int64_t{i}, pid, name, Pcode(name)});
  }
  db.AddRelation(std::move(aka_name));

  // aka_title: 3 id + 2 text
  Relation aka_title("aka_title", {{"akatitle_id", kI},
                                   {"movie_id", kI},
                                   {"atitle", kT},
                                   {"atitle_pcode", kT},
                                   {"production_year", kI}});
  const int n_aka_title = Scaled(config.scale, 1200);
  for (int i = 1; i <= n_aka_title; ++i) {
    int64_t mid = rng.NextInRange(1, n_title);
    std::string name =
        rng.NextBool(0.9) ? titles[mid - 1] : text.TitlePhrase(rng, 4);
    aka_title.AppendRow(
        {int64_t{i}, mid, name, Pcode(name), rng.NextInRange(1920, 2014)});
  }
  db.AddRelation(std::move(aka_title));

  // cast_info: 6 id + 1 text
  Relation cast_info("cast_info", {{"cast_id", kI},
                                   {"person_id", kI},
                                   {"movie_id", kI},
                                   {"char_id", kI},
                                   {"role_id", kI},
                                   {"note", kT},
                                   {"nr_order", kI}});
  const int n_cast = Scaled(config.scale, 12000);
  for (int i = 1; i <= n_cast; ++i) {
    // Real cast notes often read "(as Some Name)": reuse person names so
    // note columns join the name-ambiguity pool.
    std::string note =
        rng.NextBool(0.4)
            ? "as " + person_names[rng.NextBounded(person_names.size())]
            : text.NotePhrase(rng, 1, 3);
    cast_info.AppendRow({int64_t{i}, rng.NextInRange(1, n_person),
                         rng.NextInRange(1, n_title),
                         rng.NextInRange(1, n_char),
                         rng.NextInRange(1, n_role), std::move(note),
                         rng.NextInRange(1, 50)});
  }
  db.AddRelation(std::move(cast_info));

  // complete_cast: 2 id + 3 text
  Relation complete_cast("complete_cast", {{"ccast_id", kI},
                                           {"movie_id", kI},
                                           {"subject", kT},
                                           {"status", kT},
                                           {"note", kT}});
  const int n_ccast = Scaled(config.scale, 2000);
  for (int i = 1; i <= n_ccast; ++i) {
    complete_cast.AppendRow(
        {int64_t{i}, rng.NextInRange(1, n_title),
         std::string(rng.NextBool(0.5) ? "cast" : "crew"),
         std::string(rng.NextBool(0.7) ? "complete" : "partial"),
         text.NotePhrase(rng, 1, 3)});
  }
  db.AddRelation(std::move(complete_cast));

  // movie_companies: 4 id + 1 text
  Relation movie_companies("movie_companies", {{"mc_id", kI},
                                               {"movie_id", kI},
                                               {"company_id", kI},
                                               {"ctype_id", kI},
                                               {"note", kT},
                                               {"start_year", kI}});
  const int n_mc = Scaled(config.scale, 5000);
  for (int i = 1; i <= n_mc; ++i) {
    movie_companies.AppendRow({int64_t{i}, rng.NextInRange(1, n_title),
                               rng.NextInRange(1, n_company),
                               rng.NextInRange(1, n_ctype),
                               text.Place(rng), rng.NextInRange(1920, 2014)});
  }
  db.AddRelation(std::move(movie_companies));

  // movie_info: 4 id + 2 text
  Relation movie_info("movie_info", {{"mi_id", kI},
                                     {"movie_id", kI},
                                     {"itype_id", kI},
                                     {"info_text", kT},
                                     {"note", kT},
                                     {"info_seq", kI}});
  const int n_mi = Scaled(config.scale, 8000);
  for (int i = 1; i <= n_mi; ++i) {
    // movie_info rows mirror real IMDB info strings: genres, shooting
    // locations, taglines (note vocabulary) and references to other titles
    // — the last case injects title phrases so ET title values stay
    // ambiguous between mtitle, atitle and info_text.
    std::string info;
    switch (rng.NextBounded(4)) {
      case 0:
        info = text.Genre(rng);
        break;
      case 1:
        info = text.Place(rng);
        break;
      case 2:
        info = titles[rng.NextBounded(titles.size())];
        break;
      default:
        info = text.NotePhrase(rng, 2, 5);
        break;
    }
    movie_info.AppendRow({int64_t{i}, rng.NextInRange(1, n_title),
                          rng.NextInRange(1, n_itype), std::move(info),
                          text.NotePhrase(rng, 1, 2),
                          rng.NextInRange(1, 20)});
  }
  db.AddRelation(std::move(movie_info));

  // movie_keyword: 3 id + 1 text
  Relation movie_keyword("movie_keyword", {{"mk_id", kI},
                                           {"movie_id", kI},
                                           {"keyword_id", kI},
                                           {"note", kT}});
  const int n_mk = Scaled(config.scale, 6000);
  for (int i = 1; i <= n_mk; ++i) {
    movie_keyword.AppendRow({int64_t{i}, rng.NextInRange(1, n_title),
                             rng.NextInRange(1, n_keyword),
                             text.NotePhrase(rng, 1, 2)});
  }
  db.AddRelation(std::move(movie_keyword));

  // movie_link: 4 id + 1 text
  Relation movie_link("movie_link", {{"ml_id", kI},
                                     {"movie_id", kI},
                                     {"linked_movie_id", kI},
                                     {"ltype_id", kI},
                                     {"note", kT},
                                     {"link_order", kI}});
  const int n_ml = Scaled(config.scale, 1500);
  for (int i = 1; i <= n_ml; ++i) {
    movie_link.AppendRow({int64_t{i}, rng.NextInRange(1, n_title),
                          rng.NextInRange(1, n_title),
                          rng.NextInRange(1, n_ltype),
                          text.NotePhrase(rng, 1, 2),
                          rng.NextInRange(1, 20)});
  }
  db.AddRelation(std::move(movie_link));

  // person_info: 4 id + 2 text
  Relation person_info("person_info", {{"pi_id", kI},
                                       {"person_id", kI},
                                       {"itype_id", kI},
                                       {"pinfo", kT},
                                       {"note", kT},
                                       {"info_seq", kI}});
  const int n_pi = Scaled(config.scale, 5000);
  for (int i = 1; i <= n_pi; ++i) {
    // Biography-style info: birth places, trivia, and mentions of other
    // people by name (spouses, frequent collaborators).
    std::string pinfo;
    switch (rng.NextBounded(3)) {
      case 0:
        pinfo = text.Place(rng);
        break;
      case 1:
        pinfo = person_names[rng.NextBounded(person_names.size())];
        break;
      default:
        pinfo = text.NotePhrase(rng, 2, 5);
        break;
    }
    person_info.AppendRow({int64_t{i}, rng.NextInRange(1, n_person),
                           rng.NextInRange(1, n_itype), std::move(pinfo),
                           text.NotePhrase(rng, 1, 2),
                           rng.NextInRange(1, 20)});
  }
  db.AddRelation(std::move(person_info));

  // movie_rating: 4 id + 2 text
  Relation movie_rating("movie_rating", {{"rating_id", kI},
                                         {"movie_id", kI},
                                         {"rating_text", kT},
                                         {"votes_text", kT},
                                         {"votes", kI},
                                         {"rank", kI}});
  const int n_rating = Scaled(config.scale, 3000);
  for (int i = 1; i <= n_rating; ++i) {
    int64_t votes = rng.NextInRange(10, 200000);
    std::string rating = std::to_string(rng.NextInRange(1, 9)) + "." +
                         std::to_string(rng.NextInRange(0, 9));
    movie_rating.AppendRow({int64_t{i}, rng.NextInRange(1, n_title),
                            std::move(rating),
                            std::to_string(votes) + " votes", votes,
                            rng.NextInRange(1, 100000)});
  }
  db.AddRelation(std::move(movie_rating));

  // award: 2 id + 3 text
  Relation award("award", {{"award_id", kI},
                           {"person_id", kI},
                           {"award_name", kT},
                           {"category", kT},
                           {"note", kT}});
  const int n_award = Scaled(config.scale, 1200);
  for (int i = 1; i <= n_award; ++i) {
    std::string name(text.Word(rng, CompanyWords()));
    name += " award";
    award.AppendRow({int64_t{i}, rng.NextInRange(1, n_person),
                     std::move(name), text.Genre(rng),
                     text.NotePhrase(rng, 1, 3)});
  }
  db.AddRelation(std::move(award));

  // ---- foreign keys (Table 2: 22 edges) ----------------------------------
  db.AddForeignKey("title", "kind_id", "kind_type", "kind_id");            // 1
  db.AddForeignKey("aka_name", "person_id", "person", "person_id");        // 2
  db.AddForeignKey("aka_title", "movie_id", "title", "movie_id");          // 3
  db.AddForeignKey("cast_info", "person_id", "person", "person_id");       // 4
  db.AddForeignKey("cast_info", "movie_id", "title", "movie_id");          // 5
  db.AddForeignKey("cast_info", "char_id", "char_name", "char_id");        // 6
  db.AddForeignKey("cast_info", "role_id", "role_type", "role_id");        // 7
  db.AddForeignKey("complete_cast", "movie_id", "title", "movie_id");      // 8
  db.AddForeignKey("movie_companies", "movie_id", "title", "movie_id");    // 9
  db.AddForeignKey("movie_companies", "company_id", "company",
                   "company_id");                                          // 10
  db.AddForeignKey("movie_companies", "ctype_id", "company_type",
                   "ctype_id");                                            // 11
  db.AddForeignKey("movie_info", "movie_id", "title", "movie_id");         // 12
  db.AddForeignKey("movie_info", "itype_id", "info_type", "itype_id");     // 13
  db.AddForeignKey("movie_keyword", "movie_id", "title", "movie_id");      // 14
  db.AddForeignKey("movie_keyword", "keyword_id", "keyword",
                   "keyword_id");                                          // 15
  db.AddForeignKey("movie_link", "movie_id", "title", "movie_id");         // 16
  db.AddForeignKey("movie_link", "linked_movie_id", "title", "movie_id");  // 17
  db.AddForeignKey("movie_link", "ltype_id", "link_type", "ltype_id");     // 18
  db.AddForeignKey("person_info", "person_id", "person", "person_id");     // 19
  db.AddForeignKey("person_info", "itype_id", "info_type", "itype_id");    // 20
  db.AddForeignKey("movie_rating", "movie_id", "title", "movie_id");       // 21
  db.AddForeignKey("award", "person_id", "person", "person_id");           // 22

  db.BuildIndexes();
  return db;
}

}  // namespace qbe
