#ifndef QBE_HARNESS_EXPERIMENT_H_
#define QBE_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/candidate_gen.h"
#include "core/verifier.h"
#include "datagen/et_gen.h"
#include "exec/executor.h"
#include "schema/schema_graph.h"
#include "storage/database.h"

namespace qbe {

/// The two experimental datasets of §6.1 plus the Figure 1 toy database.
enum class DatasetKind { kRetailer, kImdb, kCust };

/// A dataset with its derived structures, ready for experiments. Members
/// are heap-allocated so the bundle is movable while Executor/EtSource keep
/// stable references.
struct Bundle {
  std::unique_ptr<Database> db;
  std::unique_ptr<SchemaGraph> graph;
  std::unique_ptr<Executor> exec;
  std::unique_ptr<EtSource> ets;
};

/// Builds the dataset (scaled per DESIGN.md's substitution note) and its
/// ET-generation matrices.
Bundle MakeBundle(DatasetKind kind, double scale, uint64_t seed);

/// Verification algorithms compared in §6. The *Par kinds run the same
/// algorithm through the parallel batched engine (8 threads, batch 8);
/// RunPoint asserts their valid sets match the serial reference, so every
/// bench doubles as a differential check of the engine.
enum class AlgoKind {
  kVerifyAll,
  kSimplePrune,
  kFilter,
  kFilterExact,
  kWeave,
  kWeaveTuple,
  kVerifyAllPar,
  kSimplePrunePar,
  kFilterPar,
};

std::string AlgoName(AlgoKind kind);

/// The engine configuration each kind runs under (serial defaults for the
/// paper's algorithms, 8×8 for the *Par kinds).
VerifyOptions AlgoVerifyOptions(AlgoKind kind);

/// Per-algorithm aggregate over a batch of ETs, carrying the §6.1 metrics.
struct AlgoAggregate {
  std::string name;
  double avg_verifications = 0;
  double avg_cost = 0;
  double avg_millis = 0;
  double max_verifications = 0;
  double max_millis = 0;
  double avg_peak_bytes = 0;
  /// Engine columns: worker threads used and the subtree-memo hit rate
  /// (hits / lookups over all ETs), so perf regressions in the parallel
  /// engine are visible in bench output.
  int threads = 1;
  double memo_hits = 0;
  double memo_lookups = 0;
  std::vector<double> per_case_verifications;
  std::vector<double> per_case_millis;
  std::vector<double> per_case_peak_bytes;

  double MemoHitRate() const {
    return memo_lookups == 0 ? 0.0 : memo_hits / memo_lookups;
  }
};

/// One sweep point: candidate/valid statistics plus per-algorithm costs.
struct ExperimentPoint {
  double avg_candidates = 0;
  double avg_valid = 0;
  std::vector<AlgoAggregate> algos;
};

/// Runs every algorithm over every ET, checking the paper's core invariant
/// — all algorithms return the same valid set — and aggregating metrics.
/// `max_join_length` is the candidate-generation bound l.
ExperimentPoint RunPoint(const Bundle& bundle,
                         const std::vector<ExampleTable>& ets,
                         const std::vector<AlgoKind>& algos,
                         int max_join_length, uint64_t seed);

/// Common CLI arguments for the bench binaries:
///   --ets=N       ETs per sweep point (default per bench)
///   --scale=X     dataset scale factor
///   --seed=N      master seed
///   --json=P      also write the sweep as machine-readable JSON to path P
///   --kernel-ab=P benches that support it (bench_fig09_vary_rows_imdb) run
///                 the SIMD kernel A/B instead of the default sweep: the
///                 same instances under every supported dispatch level
///                 (QBE_KERNEL equivalents forced in-process), asserting
///                 bit-identical verification counts, and write the
///                 per-level timings + micro-kernel speedups as JSON to P
struct BenchArgs {
  int ets_per_point;
  double scale;
  uint64_t seed = 7;
  std::string json_path;       // empty: no JSON output
  std::string kernel_ab_path;  // empty: normal sweep, no kernel A/B
};

BenchArgs ParseBenchArgs(int argc, char** argv, int default_ets,
                         double default_scale);

/// Prints a parameter sweep in the paper's two-panel style: one table for
/// the number of verifications (and candidates/valid counts) and one for
/// execution time.
void PrintSweep(const std::string& title, const std::string& param_name,
                const std::vector<std::string>& param_values,
                const std::vector<ExperimentPoint>& points);

/// Writes the same sweep as machine-readable JSON (one object with a
/// `points` array; each point carries per-algorithm verification counts,
/// times, costs and engine stats). Used by the CI bench leg to archive
/// results. Crashes (QBE_CHECK) if the file cannot be opened.
void WriteSweepJson(const std::string& path, const std::string& title,
                    const std::string& param_name,
                    const std::vector<std::string>& param_values,
                    const std::vector<ExperimentPoint>& points);

}  // namespace qbe

#endif  // QBE_HARNESS_EXPERIMENT_H_
