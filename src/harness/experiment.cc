#include "harness/experiment.h"

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>

#include "core/filter_verifier.h"
#include "core/simple_prune.h"
#include "core/verify_all.h"
#include "core/weave.h"
#include "datagen/cust_like.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "harness/table_printer.h"
#include "util/check.h"

namespace qbe {

Bundle MakeBundle(DatasetKind kind, double scale, uint64_t seed) {
  Bundle bundle;
  switch (kind) {
    case DatasetKind::kRetailer:
      bundle.db = std::make_unique<Database>(MakeRetailerDatabase());
      break;
    case DatasetKind::kImdb: {
      ImdbConfig config;
      config.scale = scale;
      config.seed = seed;
      bundle.db = std::make_unique<Database>(MakeImdbLikeDatabase(config));
      break;
    }
    case DatasetKind::kCust: {
      CustConfig config;
      config.scale = scale;
      config.seed = seed;
      bundle.db = std::make_unique<Database>(MakeCustLikeDatabase(config));
      break;
    }
  }
  bundle.graph = std::make_unique<SchemaGraph>(*bundle.db);
  bundle.exec = std::make_unique<Executor>(*bundle.db, *bundle.graph);
  bundle.ets = std::make_unique<EtSource>(*bundle.db, *bundle.graph,
                                          *bundle.exec, seed + 1);
  return bundle;
}

std::string AlgoName(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kVerifyAll:
      return "VerifyAll";
    case AlgoKind::kSimplePrune:
      return "SimplePrune";
    case AlgoKind::kFilter:
      return "Filter";
    case AlgoKind::kFilterExact:
      return "Filter(exact)";
    case AlgoKind::kWeave:
      return "Weave";
    case AlgoKind::kWeaveTuple:
      return "Weave(tuple)";
    case AlgoKind::kVerifyAllPar:
      return "VerifyAll(8t)";
    case AlgoKind::kSimplePrunePar:
      return "SimplePrune(8t)";
    case AlgoKind::kFilterPar:
      return "Filter(8t)";
  }
  return "?";
}

VerifyOptions AlgoVerifyOptions(AlgoKind kind) {
  VerifyOptions verify;
  switch (kind) {
    case AlgoKind::kVerifyAllPar:
    case AlgoKind::kSimplePrunePar:
    case AlgoKind::kFilterPar:
      verify.threads = 8;
      verify.batch_size = 8;
      break;
    default:
      break;
  }
  return verify;
}

namespace {

std::unique_ptr<CandidateVerifier> MakeAlgo(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kVerifyAll:
    case AlgoKind::kVerifyAllPar:
      return std::make_unique<VerifyAll>(RowOrder::kRandom);
    case AlgoKind::kSimplePrune:
    case AlgoKind::kSimplePrunePar:
      return std::make_unique<SimplePrune>(RowOrder::kRandom);
    case AlgoKind::kFilter:
    case AlgoKind::kFilterPar:
      return std::make_unique<FilterVerifier>();
    case AlgoKind::kFilterExact:
      return std::make_unique<FilterVerifier>(0.1, false);
    case AlgoKind::kWeave:
      return std::make_unique<JoinTreeWeave>();
    case AlgoKind::kWeaveTuple:
      return std::make_unique<TupleTreeWeave>();
  }
  return nullptr;
}

}  // namespace

ExperimentPoint RunPoint(const Bundle& bundle,
                         const std::vector<ExampleTable>& ets,
                         const std::vector<AlgoKind>& algos,
                         int max_join_length, uint64_t seed) {
  ExperimentPoint point;
  point.algos.resize(algos.size());
  for (size_t a = 0; a < algos.size(); ++a) {
    point.algos[a].name = AlgoName(algos[a]);
  }
  if (ets.empty()) return point;

  CandidateGenOptions gen_options;
  gen_options.max_join_tree_size = max_join_length;

  for (const ExampleTable& et : ets) {
    std::vector<CandidateQuery> candidates =
        GenerateCandidates(*bundle.db, *bundle.graph, et, gen_options);
    point.avg_candidates += candidates.size();

    std::vector<bool> reference;
    for (size_t a = 0; a < algos.size(); ++a) {
      VerifyContext ctx{*bundle.db, *bundle.graph, *bundle.exec,
                        et,         candidates,     seed};
      ctx.verify = AlgoVerifyOptions(algos[a]);
      std::unique_ptr<CandidateVerifier> algo = MakeAlgo(algos[a]);
      VerificationCounters counters;
      std::vector<bool> valid = algo->Verify(ctx, &counters);
      if (a == 0) {
        reference = valid;
        int num_valid = 0;
        for (bool v : valid) num_valid += v;
        point.avg_valid += num_valid;
      } else {
        // The paper's framing: every algorithm computes the same valid set.
        QBE_CHECK_MSG(valid == reference,
                      "verification algorithms disagree on the valid set");
      }
      AlgoAggregate& agg = point.algos[a];
      agg.avg_verifications += counters.verifications;
      agg.avg_cost += counters.estimated_cost;
      agg.avg_millis += counters.elapsed_seconds * 1e3;
      agg.avg_peak_bytes += static_cast<double>(counters.peak_memory_bytes);
      agg.threads = std::max(agg.threads, counters.threads_used);
      agg.memo_hits += static_cast<double>(counters.subtree_memo_hits);
      agg.memo_lookups += static_cast<double>(counters.subtree_memo_lookups);
      agg.max_verifications = std::max(
          agg.max_verifications, static_cast<double>(counters.verifications));
      agg.max_millis =
          std::max(agg.max_millis, counters.elapsed_seconds * 1e3);
      agg.per_case_verifications.push_back(counters.verifications);
      agg.per_case_millis.push_back(counters.elapsed_seconds * 1e3);
      agg.per_case_peak_bytes.push_back(
          static_cast<double>(counters.peak_memory_bytes));
    }
  }

  double n = static_cast<double>(ets.size());
  point.avg_candidates /= n;
  point.avg_valid /= n;
  for (AlgoAggregate& agg : point.algos) {
    agg.avg_verifications /= n;
    agg.avg_cost /= n;
    agg.avg_millis /= n;
    agg.avg_peak_bytes /= n;
  }
  return point;
}

void PrintSweep(const std::string& title, const std::string& param_name,
                const std::vector<std::string>& param_values,
                const std::vector<ExperimentPoint>& points) {
  QBE_CHECK(param_values.size() == points.size());
  std::printf("%s\n", title.c_str());

  std::vector<std::string> headers = {param_name, "#candidates", "#valid"};
  for (const AlgoAggregate& agg : points[0].algos) headers.push_back(agg.name);
  TablePrinter verifications(headers);
  for (size_t i = 0; i < points.size(); ++i) {
    std::vector<std::string> row = {param_values[i],
                                    FormatDouble(points[i].avg_candidates, 1),
                                    FormatDouble(points[i].avg_valid, 1)};
    for (const AlgoAggregate& agg : points[i].algos) {
      row.push_back(FormatDouble(agg.avg_verifications, 1));
    }
    verifications.AddRow(std::move(row));
  }
  std::printf("(a) #verifications\n");
  verifications.Print(std::cout);

  std::vector<std::string> time_headers = {param_name};
  for (const AlgoAggregate& agg : points[0].algos) {
    time_headers.push_back(agg.name);
  }
  TablePrinter times(time_headers);
  TablePrinter costs(time_headers);
  for (size_t i = 0; i < points.size(); ++i) {
    std::vector<std::string> trow = {param_values[i]};
    std::vector<std::string> crow = {param_values[i]};
    for (const AlgoAggregate& agg : points[i].algos) {
      trow.push_back(FormatDouble(agg.avg_millis, 2));
      crow.push_back(FormatDouble(agg.avg_cost, 1));
    }
    times.AddRow(std::move(trow));
    costs.AddRow(std::move(crow));
  }
  std::printf("(b) execution time (ms)\n");
  times.Print(std::cout);
  std::printf("(c) total estimated cost (sum of join tree sizes)\n");
  costs.Print(std::cout);

  TablePrinter engine(time_headers);
  for (size_t i = 0; i < points.size(); ++i) {
    std::vector<std::string> row = {param_values[i]};
    for (const AlgoAggregate& agg : points[i].algos) {
      row.push_back(std::to_string(agg.threads) + "t/" +
                    FormatDouble(agg.MemoHitRate() * 100.0, 1) + "%");
    }
    engine.AddRow(std::move(row));
  }
  std::printf("(d) engine: threads / subtree-memo hit rate\n");
  engine.Print(std::cout);
  std::printf("\n");
}


namespace {

/// Minimal JSON string escape (quotes, backslashes, control characters);
/// bench titles are ASCII so this covers everything we emit.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void WriteSweepJson(const std::string& path, const std::string& title,
                    const std::string& param_name,
                    const std::vector<std::string>& param_values,
                    const std::vector<ExperimentPoint>& points) {
  QBE_CHECK(param_values.size() == points.size());
  std::FILE* f = std::fopen(path.c_str(), "w");
  QBE_CHECK_MSG(f != nullptr, "cannot open JSON output path");
  std::fprintf(f, "{\n  \"title\": \"%s\",\n  \"param\": \"%s\",\n",
               JsonEscape(title).c_str(), JsonEscape(param_name).c_str());
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ExperimentPoint& point = points[i];
    std::fprintf(f,
                 "    {\"%s\": \"%s\", \"avg_candidates\": %.6g, "
                 "\"avg_valid\": %.6g, \"algos\": [\n",
                 JsonEscape(param_name).c_str(),
                 JsonEscape(param_values[i]).c_str(), point.avg_candidates,
                 point.avg_valid);
    for (size_t a = 0; a < point.algos.size(); ++a) {
      const AlgoAggregate& agg = point.algos[a];
      std::fprintf(f,
                   "      {\"name\": \"%s\", \"avg_verifications\": %.6g, "
                   "\"avg_millis\": %.6g, \"avg_cost\": %.6g, "
                   "\"max_verifications\": %.6g, \"max_millis\": %.6g, "
                   "\"avg_peak_bytes\": %.6g, \"threads\": %d, "
                   "\"memo_hit_rate\": %.6g}%s\n",
                   JsonEscape(agg.name).c_str(), agg.avg_verifications,
                   agg.avg_millis, agg.avg_cost, agg.max_verifications,
                   agg.max_millis, agg.avg_peak_bytes, agg.threads,
                   agg.MemoHitRate(), a + 1 < point.algos.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

BenchArgs ParseBenchArgs(int argc, char** argv, int default_ets,
                         double default_scale) {
  BenchArgs args;
  args.ets_per_point = default_ets;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--ets=", 6) == 0) {
      args.ets_per_point = std::atoi(arg + 6);
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      args.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.json_path = arg + 7;
    } else if (std::strncmp(arg, "--kernel-ab=", 12) == 0) {
      args.kernel_ab_path = arg + 12;
    }
  }
  QBE_CHECK(args.ets_per_point > 0);
  QBE_CHECK(args.scale > 0);
  return args;
}

}  // namespace qbe
