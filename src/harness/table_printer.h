#ifndef QBE_HARNESS_TABLE_PRINTER_H_
#define QBE_HARNESS_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace qbe {

/// Fixed-width ASCII table rendering for the benchmark harness output
/// (paper-style experiment rows).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` decimals ("12.34").
std::string FormatDouble(double value, int precision);

/// Formats a byte count as "12.3 MB" / "4.5 KB".
std::string FormatBytes(double bytes);

}  // namespace qbe

#endif  // QBE_HARNESS_TABLE_PRINTER_H_
