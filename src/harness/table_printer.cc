#include "harness/table_printer.h"

#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace qbe {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  QBE_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  print_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out << sep << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatBytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    return FormatDouble(bytes / (1024.0 * 1024.0 * 1024.0), 2) + " GB";
  }
  if (bytes >= 1024.0 * 1024.0) {
    return FormatDouble(bytes / (1024.0 * 1024.0), 2) + " MB";
  }
  if (bytes >= 1024.0) {
    return FormatDouble(bytes / 1024.0, 1) + " KB";
  }
  return FormatDouble(bytes, 0) + " B";
}

}  // namespace qbe
