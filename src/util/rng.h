#ifndef QBE_UTIL_RNG_H_
#define QBE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace qbe {

/// Deterministic 64-bit pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). All stochastic components of the library take an explicit
/// seed so that datasets, example tables and experiments are reproducible
/// bit-for-bit across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability `p`.
  bool NextBool(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    QBE_CHECK(!items.empty());
    return items[NextBounded(items.size())];
  }

  /// Derives an independent child generator; used to decouple the random
  /// streams of nested components (e.g., per-relation data generators).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace qbe

#endif  // QBE_UTIL_RNG_H_
