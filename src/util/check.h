#ifndef QBE_UTIL_CHECK_H_
#define QBE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking for a library built without exceptions: a failed check
// prints the condition with its location and aborts. QBE_CHECK is always on;
// QBE_DCHECK compiles away in NDEBUG builds and is meant for hot paths.

#define QBE_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "QBE_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define QBE_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "QBE_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define QBE_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define QBE_DCHECK(cond) QBE_CHECK(cond)
#endif

#endif  // QBE_UTIL_CHECK_H_
