#ifndef QBE_UTIL_THREAD_POOL_H_
#define QBE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

namespace qbe {

/// Fixed-size worker pool with a bounded FIFO work queue — the execution
/// substrate of DiscoveryService. The bounded queue is the admission
/// surface: TrySubmit rejects immediately when the queue is full (fast-fail
/// admission control), Submit blocks for back-pressure, and Shutdown stops
/// accepting work, runs everything already queued (graceful drain), then
/// joins the workers.
class ThreadPool {
 public:
  ThreadPool(int num_threads, size_t max_queue_depth)
      : max_queue_depth_(max_queue_depth) {
    QBE_CHECK(num_threads > 0);
    QBE_CHECK(max_queue_depth > 0);
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`, or returns false immediately if the queue is full or
  /// the pool is shutting down.
  bool TrySubmit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_ || queue_.size() >= max_queue_depth_) return false;
      queue_.push_back(std::move(task));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues `task`, blocking while the queue is full. Returns false only
  /// if the pool shut down before the task could be enqueued.
  bool Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [this] {
        return stopping_ || queue_.size() < max_queue_depth_;
      });
      if (stopping_) return false;
      queue_.push_back(std::move(task));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Stops accepting tasks, drains every task already queued, and joins the
  /// workers. Idempotent; called by the destructor.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  size_t QueueDepth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t max_queue_depth() const { return max_queue_depth_; }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and fully drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      not_full_.notify_one();
      task();
    }
  }

  const size_t max_queue_depth_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qbe

#endif  // QBE_UTIL_THREAD_POOL_H_
