#ifndef QBE_UTIL_SMALL_BITSET_H_
#define QBE_UTIL_SMALL_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/check.h"

namespace qbe {

/// Fixed-capacity bitset sized for catalog-level entities (relations, FK
/// edges, text columns). Join trees, filters and all dependency-lemma tests
/// reduce to subset/intersection operations on these, so the representation
/// is a few machine words with branch-free operations.
template <int kWords>
class SmallBitset {
 public:
  static constexpr int kCapacity = kWords * 64;

  constexpr SmallBitset() : words_{} {}

  void Set(int i) {
    QBE_DCHECK(i >= 0 && i < kCapacity);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Reset(int i) {
    QBE_DCHECK(i >= 0 && i < kCapacity);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(int i) const {
    QBE_DCHECK(i >= 0 && i < kCapacity);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  int Count() const {
    int n = 0;
    for (uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  bool Empty() const {
    for (uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// True iff every bit of *this is also set in `other`.
  bool IsSubsetOf(const SmallBitset& other) const {
    for (int i = 0; i < kWords; ++i)
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    return true;
  }

  bool Intersects(const SmallBitset& other) const {
    for (int i = 0; i < kWords; ++i)
      if ((words_[i] & other.words_[i]) != 0) return true;
    return false;
  }

  SmallBitset Union(const SmallBitset& other) const {
    SmallBitset r;
    for (int i = 0; i < kWords; ++i) r.words_[i] = words_[i] | other.words_[i];
    return r;
  }

  SmallBitset Intersect(const SmallBitset& other) const {
    SmallBitset r;
    for (int i = 0; i < kWords; ++i) r.words_[i] = words_[i] & other.words_[i];
    return r;
  }

  SmallBitset Minus(const SmallBitset& other) const {
    SmallBitset r;
    for (int i = 0; i < kWords; ++i) r.words_[i] = words_[i] & ~other.words_[i];
    return r;
  }

  /// Index of the lowest set bit, or -1 when empty.
  int First() const {
    for (int i = 0; i < kWords; ++i)
      if (words_[i] != 0) return i * 64 + std::countr_zero(words_[i]);
    return -1;
  }

  /// Index of the lowest set bit strictly greater than `i`, or -1.
  int Next(int i) const {
    ++i;
    if (i >= kCapacity) return -1;
    int w = i >> 6;
    uint64_t masked = words_[w] & (~uint64_t{0} << (i & 63));
    if (masked != 0) return w * 64 + std::countr_zero(masked);
    for (++w; w < kWords; ++w)
      if (words_[w] != 0) return w * 64 + std::countr_zero(words_[w]);
    return -1;
  }

  /// Calls `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int i = First(); i >= 0; i = Next(i)) fn(i);
  }

  friend bool operator==(const SmallBitset& a, const SmallBitset& b) {
    for (int i = 0; i < kWords; ++i)
      if (a.words_[i] != b.words_[i]) return false;
    return true;
  }

  size_t Hash() const {
    size_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : words_) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

 private:
  uint64_t words_[kWords];
};

/// Capacity choices cover the paper's datasets with headroom: IMDB has 21
/// relations / 22 edges, CUST has 100 relations / 63 edges.
using RelationSet = SmallBitset<2>;  // up to 128 relations
using EdgeSet = SmallBitset<3>;      // up to 192 foreign-key edges

}  // namespace qbe

#endif  // QBE_UTIL_SMALL_BITSET_H_
