#ifndef QBE_UTIL_MMAP_FILE_H_
#define QBE_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <optional>
#include <span>
#include <string>

namespace qbe {

/// Read-only memory mapping of a whole file (RAII). The snapshot loader
/// points SpanOrVec storage into the mapping, so a MemMap must outlive
/// every structure loaded from it — Database keeps its mapping as a member.
///
/// Open() never throws and never aborts: a missing or unreadable file is
/// reported through `*error` so callers (service startup, CLI) can fall
/// back gracefully.
class MemMap {
 public:
  static std::optional<MemMap> Open(const std::string& path,
                                    std::string* error);

  MemMap(MemMap&& other) noexcept;
  MemMap& operator=(MemMap&& other) noexcept;
  MemMap(const MemMap&) = delete;
  MemMap& operator=(const MemMap&) = delete;
  ~MemMap();

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }
  std::span<const char> bytes() const { return {data(), size_}; }

 private:
  MemMap() = default;

  void* addr_ = nullptr;  // nullptr for an empty file
  size_t size_ = 0;
};

}  // namespace qbe

#endif  // QBE_UTIL_MMAP_FILE_H_
