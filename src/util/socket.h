#ifndef QBE_UTIL_SOCKET_H_
#define QBE_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace qbe {

/// Shared BSD-socket plumbing for the process's two listeners — the
/// metrics HTTP exporter (obs/metrics_http.h) and the discovery wire
/// server (net/server.h). Everything here retries EINTR and reports
/// errors as strings; nothing throws. Loopback-only by design: neither
/// server is ever bound to a routable interface.

/// A bound + listening TCP socket on 127.0.0.1. `port` is the actual
/// bound port (useful with requested port 0 = ephemeral).
struct ListenSocket {
  int fd = -1;
  uint16_t port = 0;
  std::string error;

  bool ok() const { return fd >= 0; }
};

/// socket + SO_REUSEADDR + bind(127.0.0.1:port) + listen. On failure the
/// result's fd is -1 and `error` names the failing call.
ListenSocket OpenLoopbackListener(uint16_t port, int backlog = 64);

/// Blocking connect to 127.0.0.1-style `host`:`port` (numeric IPv4 only —
/// peers are local tools, not DNS names). Returns the connected fd, or -1
/// with `*error` set.
int ConnectTcp(const std::string& host, uint16_t port, std::string* error);

/// O_NONBLOCK on. False (with `*error` named) on fcntl failure.
bool SetNonBlocking(int fd, std::string* error);

/// accept() retrying EINTR. Returns the client fd; -1 means would-block
/// or a (transient) accept failure — callers in a poll loop just continue.
int AcceptRetry(int listen_fd);

/// read() retrying EINTR. Same contract as read otherwise.
ssize_t ReadRetry(int fd, void* buf, size_t len);

/// Writes the whole buffer to a *blocking* fd, retrying EINTR and short
/// writes. False once write fails for any other reason (peer gone, ...).
bool WriteAll(int fd, const void* data, size_t len);

/// close(fd) + set to -1; tolerates fd < 0. EINTR on close is not retried
/// (POSIX leaves the fd state unspecified; retrying can close a stranger).
void CloseFd(int* fd);

}  // namespace qbe

#endif  // QBE_UTIL_SOCKET_H_
