#ifndef QBE_UTIL_STRING_UTIL_H_
#define QBE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace qbe {

/// ASCII lowercase copy (the library's text matching is case-insensitive).
std::string AsciiLower(std::string_view s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Splits on a single separator character; empty pieces are kept.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

}  // namespace qbe

#endif  // QBE_UTIL_STRING_UTIL_H_
