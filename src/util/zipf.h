#ifndef QBE_UTIL_ZIPF_H_
#define QBE_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace qbe {

/// Zipf-distributed sampler over ranks [0, n). Natural-language token
/// frequencies are famously Zipfian; the synthetic text generators use this
/// so that phrase selectivities in the generated datasets resemble the
/// paper's real-life corpora (a few very common tokens, a long rare tail).
class ZipfSampler {
 public:
  /// `n` ranks with exponent `theta` (theta = 0 degenerates to uniform).
  ZipfSampler(size_t n, double theta);

  /// Draws a rank in [0, n); rank 0 is the most frequent.
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace qbe

#endif  // QBE_UTIL_ZIPF_H_
