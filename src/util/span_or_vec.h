#ifndef QBE_UTIL_SPAN_OR_VEC_H_
#define QBE_UTIL_SPAN_OR_VEC_H_

#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace qbe {

/// Read-mostly array storage that is either an owned std::vector (the
/// build-from-source path) or a borrowed span into an mmap'd snapshot (the
/// zero-copy cold-start path). Query code reads through data()/operator[]
/// and cannot tell the modes apart; build code obtains the owned vector via
/// MutableVec(), which is illegal in mapped mode.
///
/// The element type must be trivially copyable: mapped mode reinterprets
/// raw snapshot bytes as T and never runs constructors.
template <typename T>
class SpanOrVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpanOrVec elements are raw snapshot bytes");

 public:
  SpanOrVec() = default;
  /*implicit*/ SpanOrVec(std::vector<T> own) : own_(std::move(own)) {}
  SpanOrVec& operator=(std::vector<T> own) {
    own_ = std::move(own);
    view_ = {};
    mapped_ = false;
    return *this;
  }

  /// Borrowing mode: `view` must outlive this object (it points into a
  /// MemMap the Database keeps alive).
  static SpanOrVec Mapped(std::span<const T> view) {
    SpanOrVec s;
    s.view_ = view;
    s.mapped_ = true;
    return s;
  }

  const T* data() const { return mapped_ ? view_.data() : own_.data(); }
  size_t size() const { return mapped_ ? view_.size() : own_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T& back() const { return data()[size() - 1]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  std::span<const T> span() const { return {data(), size()}; }
  bool is_mapped() const { return mapped_; }

  /// The owned vector, for build-time mutation. Checked against mapped
  /// mode: a snapshot-backed array is immutable by construction.
  std::vector<T>& MutableVec() {
    QBE_CHECK_MSG(!mapped_, "cannot mutate mapped snapshot storage");
    return own_;
  }

  /// Heap bytes owned by this object — 0 in mapped mode, where the bytes
  /// belong to the file mapping and are shared/evictable.
  size_t OwnedBytes() const { return own_.capacity() * sizeof(T); }

 private:
  std::vector<T> own_;
  std::span<const T> view_;
  bool mapped_ = false;
};

}  // namespace qbe

#endif  // QBE_UTIL_SPAN_OR_VEC_H_
