#ifndef QBE_UTIL_INTERSECT_H_
#define QBE_UTIL_INTERSECT_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace qbe {

/// Intersection of two sorted, deduplicated uint32 row sets into `*out`
/// (cleared first; capacity is reused). Linear merge for comparable sizes;
/// when one side is ≥16x smaller, gallops — binary-probes the larger side
/// with a shrinking search window — which is the shape semijoin reductions
/// and selective-predicate seeds hit constantly (a handful of candidate
/// rows against a large reduced set). Inputs are spans so both owned
/// vectors and mmap'd snapshot sections (SpanOrVec) feed the same kernel.
inline void IntersectSortedInto(std::span<const uint32_t> a,
                                std::span<const uint32_t> b,
                                std::vector<uint32_t>* out) {
  out->clear();
  const std::span<const uint32_t> small = a.size() <= b.size() ? a : b;
  const std::span<const uint32_t> large = a.size() <= b.size() ? b : a;
  if (small.empty()) return;
  if (large.size() / 16 >= small.size()) {
    const uint32_t* lo = large.data();
    const uint32_t* end = large.data() + large.size();
    for (uint32_t v : small) {
      lo = std::lower_bound(lo, end, v);
      if (lo == end) break;
      if (*lo == v) out->push_back(v);
    }
    return;
  }
  std::set_intersection(small.begin(), small.end(), large.begin(),
                        large.end(), std::back_inserter(*out));
}

/// In-place variant: *a ∩= b, using *scratch as the output buffer (both
/// vectors keep their capacity — no steady-state allocation).
inline void IntersectSortedInPlace(std::vector<uint32_t>* a,
                                   std::span<const uint32_t> b,
                                   std::vector<uint32_t>* scratch) {
  IntersectSortedInto(*a, b, scratch);
  std::swap(*a, *scratch);
}

}  // namespace qbe

#endif  // QBE_UTIL_INTERSECT_H_
