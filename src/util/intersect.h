#ifndef QBE_UTIL_INTERSECT_H_
#define QBE_UTIL_INTERSECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/kernels.h"

namespace qbe {

/// Intersection of two sorted, deduplicated uint32 row sets into `*out`
/// (cleared first; capacity is reused). Dispatches to the SIMD kernel
/// layer (DESIGN.md §14): dense merges run the runtime-selected
/// AVX2/SSE4.2/scalar kernel; when one side is ≥16x smaller it gallops —
/// binary-probes the larger side with a shrinking search window — which is
/// the shape semijoin reductions and selective-predicate seeds hit
/// constantly (a handful of candidate rows against a large reduced set).
/// Inputs are spans so both owned vectors and mmap'd snapshot sections
/// (SpanOrVec) feed the same kernel.
inline void IntersectSortedInto(std::span<const uint32_t> a,
                                std::span<const uint32_t> b,
                                std::vector<uint32_t>* out) {
  kernels::IntersectSortedInto(a, b, out);
}

/// In-place variant: *a ∩= b, using *scratch as the output buffer (both
/// vectors keep their capacity — no steady-state allocation).
inline void IntersectSortedInPlace(std::vector<uint32_t>* a,
                                   std::span<const uint32_t> b,
                                   std::vector<uint32_t>* scratch) {
  kernels::IntersectSortedInPlace(a, b, scratch);
}

}  // namespace qbe

#endif  // QBE_UTIL_INTERSECT_H_
