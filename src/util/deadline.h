#ifndef QBE_UTIL_DEADLINE_H_
#define QBE_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace qbe {

/// Cooperative cancellation handle shared between a request owner and the
/// discovery kernel. The owner arms a wall-clock deadline (SetTimeout) or
/// cancels outright (Cancel, e.g. on service shutdown); the kernel polls
/// Expired() between CQ-row verifications (EvalEngine::Execute) and at
/// phase boundaries, so a runaway request stops within one existence-query
/// evaluation. Thread-safe; expiry and cancellation are sticky.
class DeadlineToken {
 public:
  DeadlineToken() = default;

  /// Arms the deadline `timeout` from now. Non-positive timeouts expire
  /// immediately.
  void SetTimeout(std::chrono::nanoseconds timeout) {
    deadline_ns_.store(NowNs() + timeout.count(), std::memory_order_relaxed);
  }

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != kNoDeadline && NowNs() >= deadline;
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace qbe

#endif  // QBE_UTIL_DEADLINE_H_
