#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qbe {

ListenSocket OpenLoopbackListener(uint16_t port, int backlog) {
  ListenSocket result;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    result.error = std::string("socket: ") + std::strerror(errno);
    return result;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    result.error = std::string("bind 127.0.0.1:") + std::to_string(port) +
                   ": " + std::strerror(errno);
    ::close(fd);
    return result;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  if (::listen(fd, backlog) < 0) {
    result.error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return result;
  }
  result.fd = fd;
  result.port = ntohs(addr.sin_port);
  return result;
}

int ConnectTcp(const std::string& host, uint16_t port, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 address " + host;
    return -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  // Request/response framing sends small frames; coalescing them behind
  // Nagle just adds latency.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SetNonBlocking(int fd, std::string* error) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    if (error != nullptr) {
      *error = std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno);
    }
    return false;
  }
  return true;
}

int AcceptRetry(int listen_fd) {
  for (;;) {
    int client = ::accept(listen_fd, nullptr, nullptr);
    if (client >= 0 || errno != EINTR) return client;
  }
}

ssize_t ReadRetry(int fd, void* buf, size_t len) {
  for (;;) {
    ssize_t n = ::read(fd, buf, len);
    if (n >= 0 || errno != EINTR) return n;
  }
}

bool WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    ssize_t w = ::write(fd, p + sent, len - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

void CloseFd(int* fd) {
  if (fd != nullptr && *fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

}  // namespace qbe
