#ifndef QBE_UTIL_HASH64_H_
#define QBE_UTIL_HASH64_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace qbe {

// 64-bit XXH64-style hash for snapshot section checksums. Implements the
// XXH64 algorithm (Yann Collet's public-domain specification) so checksums
// are stable across builds and inspectable with standard tooling. All loads
// go through memcpy: the input is arbitrary mapped bytes with no alignment
// guarantee.

namespace hash_internal {

inline constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Load64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Load32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  return acc * kPrime1 + kPrime4;
}

inline uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace hash_internal

inline uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0) {
  using namespace hash_internal;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }
  return Avalanche(h);
}

inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace qbe

#endif  // QBE_UTIL_HASH64_H_
