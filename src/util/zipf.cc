#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace qbe {

ZipfSampler::ZipfSampler(size_t n, double theta) {
  QBE_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace qbe
