#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qbe {

std::optional<MemMap> MemMap::Open(const std::string& path,
                                   std::string* error) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open " + path + ": " + std::strerror(errno);
    }
    return std::nullopt;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    if (error != nullptr) {
      *error = "cannot stat " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return std::nullopt;
  }
  MemMap map;
  map.size_ = static_cast<size_t>(st.st_size);
  if (map.size_ > 0) {
    void* addr = ::mmap(nullptr, map.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      if (error != nullptr) {
        *error = "cannot mmap " + path + ": " + std::strerror(errno);
      }
      ::close(fd);
      return std::nullopt;
    }
    map.addr_ = addr;
  }
  // The mapping keeps the file alive; the descriptor is no longer needed.
  ::close(fd);
  return map;
}

MemMap::MemMap(MemMap&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MemMap& MemMap::operator=(MemMap&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MemMap::~MemMap() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

}  // namespace qbe
