#ifndef QBE_INGEST_LIVE_DB_H_
#define QBE_INGEST_LIVE_DB_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ingest/db_view.h"
#include "ingest/delta.h"
#include "ingest/wal.h"
#include "storage/database.h"

namespace qbe {

class TraceContext;

/// One pinned epoch: an immutable base plus an immutable delta overlay.
/// Copying a DbVersion is an RCU-style pin — the shared_ptrs keep both
/// alive for as long as an in-flight discovery needs them, no matter how
/// many appends or compactions publish newer epochs meanwhile.
struct DbVersion {
  uint64_t epoch = 0;
  std::shared_ptr<const Database> base;
  std::shared_ptr<const DeltaView> delta;  // null ⇒ pure base

  DbView view() const { return DbView(*base, delta.get()); }
};

/// What one compaction did (service metrics / tool output).
struct CompactionStats {
  uint64_t epoch = 0;          // epoch published by the compaction
  size_t merged_appends = 0;   // ops folded into the new base
  size_t merged_tombstones = 0;
  size_t remaining_ops = 0;    // log ops left after the merge (always 0:
                               // the merge runs under the writer lock)
  double seconds = 0.0;
  bool snapshot_written = false;
};

/// Mutable front of the ingestion subsystem (DESIGN.md §12): validates and
/// admits appends/tombstones, logs them to an optional WAL, rebuilds the
/// immutable DeltaView, and publishes epochs with an atomic version swap.
/// Readers call Pin() and never block writers; writers are serialized.
///
/// Concurrency: `writer_mu_` serializes all mutation (Append/Tombstone/
/// AttachWal/Compact); `version_mu_` guards only the pointer swap + Pin
/// copy, so the read path's critical section is two shared_ptr copies.
/// Compaction holds `writer_mu_` for its whole merge — appends queue behind
/// it — but readers are never blocked: the pinned version stays valid and
/// only the final publish takes `version_mu_`.
class LiveDatabase {
 public:
  /// Takes ownership of a built (or snapshot-opened) database as epoch 0.
  explicit LiveDatabase(Database base);

  /// Pins the current epoch. Wait-free for practical purposes (one mutex
  /// held for two pointer copies).
  DbVersion Pin() const;

  uint64_t epoch() const;
  /// Appended rows across relations in the current overlay (live or dead).
  size_t delta_rows() const;
  size_t tombstones() const;
  /// Ops in the log since the last compaction (compaction trigger input).
  size_t delta_ops() const;

  /// Validates and admits one appended row for relation `rel` (arity, cell
  /// types, and PK uniqueness against the *live* set — a tombstoned PK row
  /// can be reinserted). On success the new epoch is published before the
  /// call returns; on failure nothing changes and `*error` explains why.
  bool Append(int rel, std::vector<Value> values, std::string* error);

  /// Admits a batch under one epoch publish (one WAL sync + one overlay
  /// rebuild instead of N). All-or-nothing: the first invalid row rejects
  /// the whole batch.
  bool AppendBatch(int rel, std::vector<std::vector<Value>> rows,
                   std::string* error);

  /// Deletes the live row with global id `row` of relation `rel`.
  bool Tombstone(int rel, uint32_t row, std::string* error);

  /// Fsyncs the WAL (no-op without one). Appends are durable after Flush.
  bool Flush(std::string* error);

  /// Replays the WAL at `path` (applying its ops as the starting overlay)
  /// and arms the writer so subsequent mutations are logged. A torn final
  /// record is truncated away; a corrupt log or one inconsistent with the
  /// attached base (bad relation id, arity, type, PK duplicate, dead-row
  /// tombstone) is refused. Call once, before any mutation.
  bool AttachWal(const std::string& path, std::string* error);

  bool has_wal() const;

  /// Folds the current overlay into a fresh base Database (fresh CSR text
  /// indexes, token dictionary and join indexes), publishes it as the next
  /// epoch with an empty overlay, and truncates the WAL. With a non-empty
  /// `snapshot_path` the new base is also written as a `.qbes` snapshot
  /// (temp file + rename, so a mapped predecessor stays valid) — compaction
  /// doubles as snapshot refresh. When a WAL is attached a snapshot path is
  /// REQUIRED: truncating the log is only crash-safe if the merged state is
  /// durable somewhere. A no-op (returning true) on an empty overlay.
  bool Compact(const std::string& snapshot_path, std::string* error,
               CompactionStats* stats = nullptr);

  /// Arms (null = disarms) tracing of writer-side work: WAL append/sync,
  /// WAL replay, and compaction record spans into `trace` (obs/trace.h).
  /// Observation-only — published epochs and overlay contents are
  /// unaffected. Not owned; must outlive the mutations it covers.
  void set_trace(TraceContext* trace);

 private:
  bool ValidateAppend(const DbView& view, int rel,
                      const std::vector<Value>& values,
                      const std::vector<WalRecord>& pending,
                      std::string* error) const;

  /// Appends `records` to the log + WAL and publishes the next epoch.
  /// Caller holds writer_mu_ and has validated every record.
  bool CommitLocked(std::vector<WalRecord> records, std::string* error);

  void Publish(DbVersion next);

  mutable std::mutex writer_mu_;  // serializes all mutation
  mutable std::mutex version_mu_;  // guards current_ swap + Pin
  DbVersion current_;

  // Op log since the last compaction; guarded by writer_mu_.
  std::vector<WalRecord> ops_;
  WalWriter wal_;
  TraceContext* trace_ = nullptr;  // guarded by writer_mu_
};

/// Materializes the merged logical contents of `view` as a fresh standalone
/// Database (same catalog, live rows only, indexes rebuilt). When
/// `old_to_new` is non-null it receives, per relation, the global-row-id →
/// new-row-id map (UINT32_MAX for dead rows) — compaction uses it to
/// re-express tail tombstones. Exposed for the differential tests, which
/// compare overlay reads against exactly this cold load.
Database MaterializeDatabase(
    const DbView& view, std::vector<std::vector<uint32_t>>* old_to_new = nullptr);

}  // namespace qbe

#endif  // QBE_INGEST_LIVE_DB_H_
