#ifndef QBE_INGEST_COMPACTOR_H_
#define QBE_INGEST_COMPACTOR_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "ingest/live_db.h"

namespace qbe {

/// Background compaction driver: polls the live database's op-log depth and
/// folds the overlay into a fresh base (+ optional snapshot refresh) once it
/// crosses the threshold. One thread; Stop() joins it. Readers are never
/// blocked by a running compaction — it publishes a new epoch when done.
class Compactor {
 public:
  struct Options {
    /// Compact when the op log reaches this many records (0 disables the
    /// threshold; compaction then only happens via Poke/CompactNow).
    size_t ops_threshold = 0;
    std::chrono::milliseconds poll_interval{200};
    /// Snapshot refresh target ("" = in-memory compaction only; required
    /// when the live database has a WAL attached).
    std::string snapshot_path;
    /// Called after each successful compaction / each failure.
    std::function<void(const CompactionStats&)> on_compaction;
    std::function<void(const std::string&)> on_error;
  };

  Compactor(LiveDatabase* live, Options options);
  ~Compactor();
  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Wakes the thread to re-check the threshold immediately.
  void Poke();

  /// Stops and joins the background thread. Idempotent.
  void Stop();

 private:
  void Run();
  void MaybeCompact();

  LiveDatabase* live_;
  Options options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool poked_ = false;
  std::thread thread_;
};

}  // namespace qbe

#endif  // QBE_INGEST_COMPACTOR_H_
