#include "ingest/db_view.h"

#include <algorithm>

namespace qbe {

std::string_view DbView::TextAt(int rel, int col, uint32_t row) const {
  const uint32_t base_rows = base_->relation(rel).num_rows();
  if (row < base_rows) return base_->relation(rel).TextAt(col, row);
  // Views into the overlay's owned strings: stable for the lifetime of the
  // pinned DeltaView (it is immutable and shared_ptr-held by the version).
  return std::get<std::string>(delta_->rels[rel].rows[row - base_rows][col]);
}

int64_t DbView::IdAt(int rel, int col, uint32_t row) const {
  const uint32_t base_rows = base_->relation(rel).num_rows();
  if (row < base_rows) return base_->relation(rel).IdAt(col, row);
  return std::get<int64_t>(delta_->rels[rel].rows[row - base_rows][col]);
}

void DbView::IdsOfInto(const std::vector<std::string>& tokens,
                       std::vector<uint32_t>* out) const {
  out->clear();
  out->reserve(tokens.size());
  for (const std::string& token : tokens) out->push_back(FindToken(token));
}

void DbView::MatchPhraseIdsInto(const ColumnRef& col,
                                std::span<const uint32_t> ids,
                                std::vector<uint32_t>* rows) const {
  base_->TextIndex(col).MatchPhraseIdsInto(ids, rows);
  if (delta_ == nullptr) return;
  const DeltaView::RelDelta& rd = delta_->rels[col.rel];
  if (!rd.tombstones.empty()) {
    std::erase_if(*rows,
                  [&](uint32_t r) { return rd.tombstones.count(r) != 0; });
  }
  delta_->MatchPhraseInto(col.rel, base_->TextColumnGid(col), ids, rows);
}

void DbView::MatchExactIdsInto(const ColumnRef& col,
                               std::span<const uint32_t> ids,
                               std::vector<uint32_t>* rows) const {
  base_->TextIndex(col).MatchExactIdsInto(ids, rows);
  if (delta_ == nullptr) return;
  const DeltaView::RelDelta& rd = delta_->rels[col.rel];
  if (!rd.tombstones.empty()) {
    std::erase_if(*rows,
                  [&](uint32_t r) { return rd.tombstones.count(r) != 0; });
  }
  delta_->MatchExactInto(col.rel, base_->TextColumnGid(col), ids, rows);
}

size_t DbView::MatchCount(const ColumnRef& col,
                          std::span<const uint32_t> ids) const {
  if (plain()) return base_->TextIndex(col).MatchPhraseIds(ids).size();
  std::vector<uint32_t> rows;
  MatchPhraseIdsInto(col, ids, &rows);
  return rows.size();
}

bool DbView::AnyMatch(const ColumnRef& col,
                      std::span<const uint32_t> ids) const {
  const DeltaView::RelDelta* rd =
      delta_ == nullptr ? nullptr : &delta_->rels[col.rel];
  if (rd == nullptr || rd->tombstones.empty()) {
    if (base_->TextIndex(col).AnyMatchIds(ids)) return true;
  } else {
    // A base hit could be a tombstoned row; fall back to the exact set.
    std::vector<uint32_t> rows;
    base_->TextIndex(col).MatchPhraseIdsInto(ids, &rows);
    for (uint32_t r : rows) {
      if (rd->tombstones.count(r) == 0) return true;
    }
  }
  return delta_ != nullptr &&
         delta_->AnyMatch(col.rel, base_->TextColumnGid(col), ids);
}

void DbView::ColumnsContainingIdsInto(std::span<const uint32_t> ids,
                                      std::vector<int>* gids) const {
  gids->clear();
  std::vector<int> base_gids = base_->column_index().ColumnsContainingIds(ids);
  if (delta_ == nullptr) {
    *gids = std::move(base_gids);
    return;
  }
  // Overlay columns containing the phrase in a live appended row.
  std::vector<int> delta_gids;
  if (ids.empty()) {
    // An empty phrase matches every column whose relation has a live
    // appended row (the base CI covers relations with base rows).
    for (int rel = 0; rel < base_->num_relations(); ++rel) {
      const DeltaView::RelDelta& rd = delta_->rels[rel];
      if (std::none_of(rd.row_live.begin(), rd.row_live.end(),
                       [](char live) { return live != 0; })) {
        continue;
      }
      const Relation& relation = base_->relation(rel);
      for (int c = 0; c < relation.num_columns(); ++c) {
        if (relation.columns()[c].type == ColumnType::kText) {
          delta_gids.push_back(base_->TextColumnGid({rel, c}));
        }
      }
    }
    std::sort(delta_gids.begin(), delta_gids.end());
  } else {
    for (const auto& [gid, gd] : delta_->gids) {  // ascending (ordered map)
      const ColumnRef& col = base_->TextColumnByGid(gid);
      if (delta_->AnyMatch(col.rel, gid, ids)) delta_gids.push_back(gid);
    }
  }
  std::set_union(base_gids.begin(), base_gids.end(), delta_gids.begin(),
                 delta_gids.end(), std::back_inserter(*gids));
}

int32_t DbView::ParentRowOf(int edge, uint32_t from_row) const {
  if (delta_ == nullptr) return base_->ParentRowOf(edge, from_row);
  const DeltaView::EdgeDelta& ed = delta_->edges[edge];
  if (!ed.affected) return base_->ParentRowOf(edge, from_row);
  const ForeignKey& fk = base_->foreign_key(edge);
  const uint32_t base_from = delta_->rels[fk.from_rel].base_rows;
  if (from_row >= base_from) return ed.delta_parent[from_row - base_from];
  const int32_t p = base_->ParentRowOf(edge, from_row);
  if (p >= 0 && delta_->IsLive(fk.to_rel, static_cast<uint32_t>(p))) return p;
  auto it = ed.revalidated.find(from_row);
  return it == ed.revalidated.end() ? -1 : it->second;
}

std::span<const uint32_t> DbView::ChildRowsOf(
    int edge, uint32_t to_row, std::vector<uint32_t>* scratch) const {
  if (delta_ == nullptr) return base_->ChildRowsOf(edge, to_row);
  const DeltaView::EdgeDelta& ed = delta_->edges[edge];
  const ForeignKey& fk = base_->foreign_key(edge);
  const uint32_t base_to = delta_->rels[fk.to_rel].base_rows;
  if (!ed.affected && to_row < base_to) {
    return base_->ChildRowsOf(edge, to_row);
  }
  scratch->clear();
  if (to_row < base_to) {
    for (uint32_t r : base_->ChildRowsOf(edge, to_row)) {
      if (delta_->IsLive(fk.from_rel, r)) scratch->push_back(r);
    }
  }
  auto it = ed.extra_children.find(to_row);
  if (it != ed.extra_children.end()) {
    // For a base parent the extras are all appended rows (>= base child
    // rows); for an appended parent the base list is empty — either way
    // the concatenation stays ascending.
    scratch->insert(scratch->end(), it->second.begin(), it->second.end());
  }
  return *scratch;
}

std::span<const uint32_t> DbView::ValidFromRows(
    int edge, std::vector<uint32_t>* scratch) const {
  if (delta_ == nullptr) return base_->ValidFromRows(edge);
  const DeltaView::EdgeDelta& ed = delta_->edges[edge];
  if (!ed.affected) return base_->ValidFromRows(edge);
  const ForeignKey& fk = base_->foreign_key(edge);
  const DeltaView::RelDelta& from_d = delta_->rels[fk.from_rel];
  scratch->clear();
  // Sorted union of base-valid rows and revalidated rows, re-filtered
  // against this epoch's liveness and parent resolution.
  const std::span<const uint32_t> base_valid = base_->ValidFromRows(edge);
  size_t i = 0, j = 0;
  while (i < base_valid.size() || j < ed.revalidated_rows.size()) {
    uint32_t r;
    if (j >= ed.revalidated_rows.size() ||
        (i < base_valid.size() && base_valid[i] <= ed.revalidated_rows[j])) {
      r = base_valid[i];
      if (i < base_valid.size() && j < ed.revalidated_rows.size() &&
          base_valid[i] == ed.revalidated_rows[j]) {
        ++j;
      }
      ++i;
    } else {
      r = ed.revalidated_rows[j++];
    }
    if (delta_->IsLive(fk.from_rel, r) && ParentRowOf(edge, r) >= 0) {
      scratch->push_back(r);
    }
  }
  for (size_t k = 0; k < from_d.rows.size(); ++k) {
    if (from_d.row_live[k] && ed.delta_parent[k] >= 0) {
      scratch->push_back(from_d.base_rows + static_cast<uint32_t>(k));
    }
  }
  return *scratch;
}

std::span<const uint32_t> DbView::ReferencedRows(
    int edge, std::vector<uint32_t>* scratch) const {
  if (delta_ == nullptr) return base_->ReferencedRows(edge);
  const DeltaView::EdgeDelta& ed = delta_->edges[edge];
  if (!ed.affected && ed.extra_referenced.empty()) {
    return base_->ReferencedRows(edge);
  }
  const ForeignKey& fk = base_->foreign_key(edge);
  scratch->clear();
  const std::span<const uint32_t> base_ref = base_->ReferencedRows(edge);
  size_t i = 0, j = 0;
  while (i < base_ref.size() || j < ed.extra_referenced.size()) {
    uint32_t t;
    if (j >= ed.extra_referenced.size() ||
        (i < base_ref.size() && base_ref[i] <= ed.extra_referenced[j])) {
      t = base_ref[i];
      if (i < base_ref.size() && j < ed.extra_referenced.size() &&
          base_ref[i] == ed.extra_referenced[j]) {
        ++j;
      }
      ++i;
    } else {
      t = ed.extra_referenced[j++];
    }
    if (delta_->IsLive(fk.to_rel, t) &&
        ed.dropped_referenced.count(t) == 0) {
      scratch->push_back(t);
    }
  }
  return *scratch;
}

}  // namespace qbe
