#ifndef QBE_INGEST_WAL_H_
#define QBE_INGEST_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace qbe {

/// One logical mutation against a live database. Appends carry the full row
/// (column order of the relation); tombstones carry the global row id being
/// deleted (base rows and delta rows share one id space per relation:
/// base ids [0, base_rows), delta ids from base_rows up).
struct WalRecord {
  enum Kind : uint32_t { kAppend = 1, kTombstone = 2 };

  uint32_t kind = kAppend;
  uint32_t rel = 0;
  std::vector<Value> values;  // kAppend
  uint32_t row = 0;           // kTombstone

  friend bool operator==(const WalRecord& a, const WalRecord& b) {
    return a.kind == b.kind && a.rel == b.rel && a.values == b.values &&
           a.row == b.row;
  }
};

// On-disk layout of a `.qbel` write-ahead log (DESIGN.md §12):
//
//   [u64 magic][u32 version][u32 reserved]            16-byte header
//   repeated records:
//     [u32 payload_bytes][u32 kind][payload][u64 checksum]
//
// The checksum is XXH64 over (payload_bytes || kind || payload), so a bit
// flip anywhere in a record — including its length prefix — fails
// verification. Append payload: u32 rel, u32 num_cells, then per cell a u8
// type tag (0 = id, 1 = text) followed by i64 (id) or u32 len + bytes
// (text). Tombstone payload: u32 rel, u32 global row id.
inline constexpr uint64_t kWalMagic = 0x314C4157454251ULL;  // "QBEWAL1\0"
inline constexpr uint32_t kWalVersion = 1;

/// Serializes `record` into the on-disk framing (length prefix + kind +
/// payload + checksum), appended to `*out`. Exposed for tests that build
/// corrupted logs byte by byte.
void EncodeWalRecord(const WalRecord& record, std::string* out);

/// The 16-byte WAL file header.
std::string EncodeWalHeader();

/// Outcome of reading a WAL from disk.
struct WalReadResult {
  /// False iff the log is unusable: bad header, a record whose checksum
  /// fails, or an undecodable payload. `error` describes the problem.
  bool ok = false;
  /// Records decoded, in log order. On a torn tail this is the complete
  /// prefix; on ok == false it is whatever decoded before the failure (for
  /// diagnostics only — callers must not apply it).
  std::vector<WalRecord> records;
  /// True when the file ends mid-record (a crash between write and sync).
  /// The complete-record prefix is still trustworthy — this is the normal
  /// crash-recovery case, distinct from a checksum failure.
  bool truncated_tail = false;
  std::string error;
};

/// Reads and verifies every record of the WAL at `path`. A missing file is
/// reported as ok with zero records (a fresh database simply has no log
/// yet). Corruption (checksum mismatch, bad magic/version, undecodable
/// payload) is a hard failure; a torn final record is not.
WalReadResult ReadWal(const std::string& path);

/// Append-only WAL writer. Records are framed and checksummed by Append;
/// Sync flushes and fsyncs. Truncate atomically replaces the log's contents
/// with `records` (compaction: ops already merged into the new base are
/// dropped, unmerged ones are kept) via a temp file + rename.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending, writing the header if the file is new or
  /// empty. An existing log is NOT re-verified here — callers replay it
  /// with ReadWal first and refuse to append to a corrupt log.
  bool Open(const std::string& path, std::string* error);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends one framed record. Buffered; call Sync to make it durable.
  bool Append(const WalRecord& record, std::string* error);

  /// Flushes buffered records and fsyncs the file.
  bool Sync(std::string* error);

  /// Atomically replaces the log with `records` (temp file + fsync +
  /// rename). The writer stays open on the new log.
  bool Truncate(const std::vector<WalRecord>& records, std::string* error);

  void Close();

 private:
  std::string path_;
  void* file_ = nullptr;  // FILE*; void* keeps <cstdio> out of the header
};

}  // namespace qbe

#endif  // QBE_INGEST_WAL_H_
