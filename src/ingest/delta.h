#ifndef QBE_INGEST_DELTA_H_
#define QBE_INGEST_DELTA_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ingest/wal.h"
#include "storage/database.h"

namespace qbe {

/// Immutable overlay over one base Database: the appended rows, tombstones,
/// and the small hash-based delta indexes (inverted text postings, token
/// dictionary extension, per-edge join structures) that query kernels
/// consult alongside the base's CSR arrays (DESIGN.md §12).
///
/// A DeltaView is built in full by BuildDeltaView from the op log and never
/// mutated afterwards — writers publish a *new* DeltaView per batch and swap
/// it in under the version lock, so in-flight readers holding the old
/// shared_ptr keep a perfectly consistent epoch with zero synchronization
/// on the read path.
///
/// Row addressing: relation r exposes one global row-id space — base rows
/// [0, base_rows) followed by appended rows [base_rows, base_rows +
/// appended). Tombstones are global ids (base or delta rows) and simply
/// mark a row dead; ids are never reused until compaction renumbers.
class DeltaView {
 public:
  /// Per-relation append/tombstone state.
  struct RelDelta {
    uint32_t base_rows = 0;
    /// Appended rows in append order (row-major; deltas are small by
    /// construction — compaction folds them into the base).
    std::vector<std::vector<Value>> rows;
    /// Liveness of each appended row (a later tombstone can kill it).
    std::vector<char> row_live;
    /// Dead global row ids (base and delta rows alike).
    std::unordered_set<uint32_t> tombstones;
    uint32_t live_rows = 0;  // live base + live appended
    /// Live PK value → global row, per PK-target column. Only columns that
    /// are the `to_col` of some foreign key are tracked (those are the only
    /// columns with a uniqueness contract).
    std::unordered_map<int, std::unordered_map<int64_t, uint32_t>> pk_by_col;

    bool has_delta() const { return !rows.empty() || !tombstones.empty(); }
  };

  /// Delta inverted index of one text column (by global text-column gid):
  /// hash-keyed positional postings over the appended live rows only.
  struct GidDelta {
    /// Token id → packed (global_row << 32 | position), ascending. Keys may
    /// be base-dictionary ids or delta ids (>= base dict size). An ordered
    /// map keeps iteration deterministic.
    std::map<uint32_t, std::vector<uint64_t>> postings;
    /// Token count per appended row (indexed global_row - base_rows;
    /// includes dead rows, which have no postings).
    std::vector<uint32_t> row_token_counts;
  };

  /// Per-FK-edge join overlay. `affected` is true when this edge's reads
  /// cannot be served from the base arrays verbatim: appended rows on the
  /// FK side, revalidations, or tombstones on either endpoint relation.
  struct EdgeDelta {
    bool affected = false;
    /// Appended from-row (index global - base_from_rows) → live global
    /// parent row, or -1 (dangling). Resolved at build time against the
    /// final liveness of this epoch.
    std::vector<int32_t> delta_parent;
    /// Base from-rows whose base-resolved parent is missing or dead but
    /// whose FK value now matches a live appended PK row (revalidated
    /// dangling rows, and delete-then-reinsert reparenting).
    std::unordered_map<uint32_t, int32_t> revalidated;
    std::vector<uint32_t> revalidated_rows;  // sorted keys of `revalidated`
    /// Global to-row → sorted live global from-rows joined to it beyond the
    /// base child CSR (appended rows, plus revalidated base rows for
    /// appended parents).
    std::unordered_map<uint32_t, std::vector<uint32_t>> extra_children;
    /// Sorted global to-rows newly referenced by at least one live from-row
    /// (merged over the base ReferencedRows span at read time).
    std::vector<uint32_t> extra_referenced;
    /// Base to-rows that lost their last live referencing row.
    std::unordered_set<uint32_t> dropped_referenced;
  };

  uint64_t epoch = 0;
  /// Ops consumed from the log to build this view (compaction bookkeeping).
  size_t num_ops = 0;
  size_t appended_total = 0;
  size_t tombstones_total = 0;

  std::vector<RelDelta> rels;    // by relation id
  std::map<int, GidDelta> gids;  // text-column gid → delta postings
  std::vector<EdgeDelta> edges;  // by edge id

  bool empty() const { return appended_total == 0 && tombstones_total == 0; }

  // --- delta token dictionary ----------------------------------------------
  // Tokens unseen by the base dictionary get ids base_dict_size + i, so a
  // phrase over fresh vocabulary still resolves to real ids (the base index
  // simply has no postings for them).

  uint32_t base_dict_size = 0;

  /// Id of a delta-only token, or TokenDict::kNoToken.
  uint32_t FindDeltaToken(std::string_view token) const {
    auto it = delta_token_ids_.find(token);
    return it == delta_token_ids_.end() ? TokenDict::kNoToken : it->second;
  }

  size_t delta_dict_size() const { return delta_tokens_.size(); }

  // --- read helpers (called by DbView) -------------------------------------

  bool IsLive(int rel, uint32_t row) const {
    return rels[rel].tombstones.count(row) == 0;
  }

  uint32_t TotalRows(int rel) const {
    return rels[rel].base_rows + static_cast<uint32_t>(rels[rel].rows.size());
  }

  /// Appends the live appended rows of `gid`'s column whose cells contain
  /// the phrase, ascending global ids (all >= base_rows, so concatenating
  /// after the base index's matches keeps the output sorted). An empty
  /// phrase matches every live appended row.
  void MatchPhraseInto(int rel, int gid, std::span<const uint32_t> ids,
                       std::vector<uint32_t>* rows) const;

  /// Exact-cell variant (phrase at position 0 covering the whole cell).
  void MatchExactInto(int rel, int gid, std::span<const uint32_t> ids,
                      std::vector<uint32_t>* rows) const;

  /// True iff some live appended row of `gid`'s column contains the phrase.
  bool AnyMatch(int rel, int gid, std::span<const uint32_t> ids) const;

 private:
  friend std::shared_ptr<const DeltaView> BuildDeltaView(
      const Database& base, std::span<const WalRecord> ops, uint64_t epoch);

  /// Build-time interning of a delta-only token.
  uint32_t InternDeltaToken(std::string_view token);

  std::deque<std::string> delta_tokens_;  // stable addresses for the views
  std::unordered_map<std::string_view, uint32_t> delta_token_ids_;
};

/// Rebuilds the full overlay for `ops` against `base`. Ops must already be
/// validated (LiveDatabase validates at admission and on WAL replay):
/// relation ids in range, arities/types matching, no live-PK duplicates, no
/// double tombstones. Cost is O(|ops| · lookup) — bounded because the
/// Compactor folds the log into a fresh base before it grows large.
std::shared_ptr<const DeltaView> BuildDeltaView(const Database& base,
                                                std::span<const WalRecord> ops,
                                                uint64_t epoch);

}  // namespace qbe

#endif  // QBE_INGEST_DELTA_H_
