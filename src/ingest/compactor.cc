#include "ingest/compactor.h"

#include <utility>

namespace qbe {

Compactor::Compactor(LiveDatabase* live, Options options)
    : live_(live), options_(std::move(options)) {
  thread_ = std::thread([this] { Run(); });
}

Compactor::~Compactor() { Stop(); }

void Compactor::Poke() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poked_ = true;
  }
  cv_.notify_one();
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void Compactor::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, options_.poll_interval,
                 [this] { return stop_ || poked_; });
    if (stop_) break;
    const bool poked = poked_;
    poked_ = false;
    lock.unlock();
    if (poked || (options_.ops_threshold > 0 &&
                  live_->delta_ops() >= options_.ops_threshold)) {
      MaybeCompact();
    }
    lock.lock();
  }
}

void Compactor::MaybeCompact() {
  CompactionStats stats;
  std::string error;
  if (live_->Compact(options_.snapshot_path, &error, &stats)) {
    if (stats.epoch != 0 && options_.on_compaction) options_.on_compaction(stats);
  } else if (options_.on_error) {
    options_.on_error(error);
  }
}

}  // namespace qbe
