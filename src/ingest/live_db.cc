#include "ingest/live_db.h"

#include <algorithm>
#include <filesystem>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"
#include "snapshot/snapshot.h"
#include "util/stopwatch.h"

namespace qbe {

namespace {

const char* TypeName(ColumnType type) {
  return type == ColumnType::kId ? "id" : "text";
}

}  // namespace

LiveDatabase::LiveDatabase(Database base) {
  current_.epoch = 0;
  current_.base = std::make_shared<const Database>(std::move(base));
}

DbVersion LiveDatabase::Pin() const {
  std::lock_guard<std::mutex> lock(version_mu_);
  return current_;
}

void LiveDatabase::Publish(DbVersion next) {
  std::lock_guard<std::mutex> lock(version_mu_);
  current_ = std::move(next);
}

uint64_t LiveDatabase::epoch() const { return Pin().epoch; }

size_t LiveDatabase::delta_rows() const {
  DbVersion v = Pin();
  return v.delta == nullptr ? 0 : v.delta->appended_total;
}

size_t LiveDatabase::tombstones() const {
  DbVersion v = Pin();
  return v.delta == nullptr ? 0 : v.delta->tombstones_total;
}

size_t LiveDatabase::delta_ops() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return ops_.size();
}

bool LiveDatabase::has_wal() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return wal_.is_open();
}

bool LiveDatabase::ValidateAppend(const DbView& view, int rel,
                                  const std::vector<Value>& values,
                                  const std::vector<WalRecord>& pending,
                                  std::string* error) const {
  if (rel < 0 || rel >= view.num_relations()) {
    if (error != nullptr) {
      *error = "append: relation id " + std::to_string(rel) + " out of range";
    }
    return false;
  }
  const Relation& relation = view.relation(rel);
  if (values.size() != static_cast<size_t>(relation.num_columns())) {
    if (error != nullptr) {
      *error = "append to " + relation.name() + ": got " +
               std::to_string(values.size()) + " cells, want " +
               std::to_string(relation.num_columns());
    }
    return false;
  }
  for (int c = 0; c < relation.num_columns(); ++c) {
    const ColumnDef& def = relation.columns()[c];
    const bool is_id = std::holds_alternative<int64_t>(values[c]);
    if (is_id != (def.type == ColumnType::kId)) {
      if (error != nullptr) {
        *error = "append to " + relation.name() + ": column " + def.name +
                 " wants " + TypeName(def.type) + ", got " +
                 TypeName(is_id ? ColumnType::kId : ColumnType::kText);
      }
      return false;
    }
  }
  // PK uniqueness against the LIVE set: a tombstoned PK row can be
  // reinserted (its surviving FK children are reparented by the overlay).
  for (const ForeignKey& fk : view.foreign_keys()) {
    if (fk.to_rel != rel) continue;
    const int64_t key = std::get<int64_t>(values[fk.to_col]);
    bool dup = false;
    const int64_t p = view.base().PkLookup(rel, fk.to_col, key);
    if (p >= 0 && view.IsLive(rel, static_cast<uint32_t>(p))) dup = true;
    if (!dup && view.delta() != nullptr) {
      const auto& pk_cols = view.delta()->rels[rel].pk_by_col;
      auto it = pk_cols.find(fk.to_col);
      dup = it != pk_cols.end() && it->second.count(key) != 0;
    }
    for (size_t i = 0; i < pending.size() && !dup; ++i) {
      dup = pending[i].kind == WalRecord::kAppend &&
            pending[i].rel == static_cast<uint32_t>(rel) &&
            std::get<int64_t>(pending[i].values[fk.to_col]) == key;
    }
    if (dup) {
      if (error != nullptr) {
        *error = "append to " + relation.name() + ": duplicate key " +
                 std::to_string(key) + " in PK column " +
                 relation.columns()[fk.to_col].name;
      }
      return false;
    }
  }
  return true;
}

void LiveDatabase::set_trace(TraceContext* trace) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  trace_ = trace;
}

bool LiveDatabase::CommitLocked(std::vector<WalRecord> records,
                                std::string* error) {
  if (wal_.is_open()) {
    ScopedSpan wal_span(trace_, SpanKind::kWalAppend);
    for (const WalRecord& record : records) {
      if (!wal_.Append(record, error)) return false;
    }
    if (!wal_.Sync(error)) return false;
  }
  for (WalRecord& record : records) ops_.push_back(std::move(record));
  DbVersion next;
  next.epoch = current_.epoch + 1;
  next.base = current_.base;
  next.delta = BuildDeltaView(*next.base, ops_, next.epoch);
  Publish(std::move(next));
  return true;
}

bool LiveDatabase::Append(int rel, std::vector<Value> values,
                          std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!ValidateAppend(current_.view(), rel, values, {}, error)) return false;
  WalRecord record;
  record.kind = WalRecord::kAppend;
  record.rel = static_cast<uint32_t>(rel);
  record.values = std::move(values);
  std::vector<WalRecord> batch;
  batch.push_back(std::move(record));
  return CommitLocked(std::move(batch), error);
}

bool LiveDatabase::AppendBatch(int rel, std::vector<std::vector<Value>> rows,
                               std::string* error) {
  if (rows.empty()) return true;
  std::lock_guard<std::mutex> lock(writer_mu_);
  const DbView view = current_.view();
  std::vector<WalRecord> batch;
  batch.reserve(rows.size());
  for (std::vector<Value>& values : rows) {
    if (!ValidateAppend(view, rel, values, batch, error)) return false;
    WalRecord record;
    record.kind = WalRecord::kAppend;
    record.rel = static_cast<uint32_t>(rel);
    record.values = std::move(values);
    batch.push_back(std::move(record));
  }
  return CommitLocked(std::move(batch), error);
}

bool LiveDatabase::Tombstone(int rel, uint32_t row, std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const DbView view = current_.view();
  if (rel < 0 || rel >= view.num_relations()) {
    if (error != nullptr) {
      *error =
          "tombstone: relation id " + std::to_string(rel) + " out of range";
    }
    return false;
  }
  if (row >= view.TotalRows(rel)) {
    if (error != nullptr) {
      *error = "tombstone in " + view.relation(rel).name() + ": row " +
               std::to_string(row) + " out of range";
    }
    return false;
  }
  if (!view.IsLive(rel, row)) {
    if (error != nullptr) {
      *error = "tombstone in " + view.relation(rel).name() + ": row " +
               std::to_string(row) + " is already dead";
    }
    return false;
  }
  WalRecord record;
  record.kind = WalRecord::kTombstone;
  record.rel = static_cast<uint32_t>(rel);
  record.row = row;
  std::vector<WalRecord> batch;
  batch.push_back(std::move(record));
  return CommitLocked(std::move(batch), error);
}

bool LiveDatabase::Flush(std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!wal_.is_open()) return true;
  return wal_.Sync(error);
}

bool LiveDatabase::AttachWal(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (wal_.is_open()) {
    if (error != nullptr) *error = "a WAL is already attached";
    return false;
  }
  if (!ops_.empty()) {
    if (error != nullptr) {
      *error = "cannot attach a WAL after unlogged mutations";
    }
    return false;
  }
  ScopedSpan replay_span(trace_, SpanKind::kWalReplay);
  WalReadResult log = ReadWal(path);
  if (!log.ok) {
    if (error != nullptr) *error = log.error;
    return false;
  }

  // Replay validation: the log must be a consistent mutation history of the
  // attached base. Lightweight per-record state instead of a per-record
  // overlay rebuild — O(1) amortized per record.
  const Database& base = *current_.base;
  struct RelState {
    uint32_t appended = 0;
    std::unordered_set<uint32_t> dead;
    // pk col → live key → global row (delta rows only)
    std::unordered_map<int, std::unordered_map<int64_t, uint32_t>> pk;
  };
  std::vector<RelState> state(base.num_relations());
  std::vector<std::vector<int>> pk_cols(base.num_relations());
  for (const ForeignKey& fk : base.foreign_keys()) {
    auto& cols = pk_cols[fk.to_rel];
    if (std::find(cols.begin(), cols.end(), fk.to_col) == cols.end()) {
      cols.push_back(fk.to_col);
    }
  }
  auto reject = [&](size_t index, const std::string& why) {
    if (error != nullptr) {
      *error = "WAL " + path + ": record " + std::to_string(index) +
               " does not apply to this database: " + why;
    }
    return false;
  };
  for (size_t i = 0; i < log.records.size(); ++i) {
    const WalRecord& record = log.records[i];
    if (record.rel >= static_cast<uint32_t>(base.num_relations())) {
      return reject(i, "relation id out of range");
    }
    const int rel = static_cast<int>(record.rel);
    const Relation& relation = base.relation(rel);
    RelState& rs = state[rel];
    if (record.kind == WalRecord::kAppend) {
      if (record.values.size() != static_cast<size_t>(relation.num_columns())) {
        return reject(i, "arity mismatch for " + relation.name());
      }
      for (int c = 0; c < relation.num_columns(); ++c) {
        const bool is_id = std::holds_alternative<int64_t>(record.values[c]);
        if (is_id != (relation.columns()[c].type == ColumnType::kId)) {
          return reject(i, "cell type mismatch for " + relation.name());
        }
      }
      const uint32_t row = relation.num_rows() + rs.appended;
      for (int col : pk_cols[rel]) {
        const int64_t key = std::get<int64_t>(record.values[col]);
        const int64_t p = base.PkLookup(rel, col, key);
        const bool base_live =
            p >= 0 && rs.dead.count(static_cast<uint32_t>(p)) == 0;
        if (base_live || rs.pk[col].count(key) != 0) {
          return reject(i, "duplicate PK key in " + relation.name());
        }
        rs.pk[col][key] = row;
      }
      ++rs.appended;
    } else {
      const uint32_t total = relation.num_rows() + rs.appended;
      if (record.row >= total) {
        return reject(i, "tombstone row out of range in " + relation.name());
      }
      if (!rs.dead.insert(record.row).second) {
        return reject(i, "double tombstone in " + relation.name());
      }
      // A killed appended row releases its PK keys for reinsertion.
      for (auto& [col, keys] : rs.pk) {
        std::erase_if(keys,
                      [&](const auto& kv) { return kv.second == record.row; });
      }
    }
  }

  if (!wal_.Open(path, error)) return false;
  if (log.truncated_tail) {
    // Drop the torn bytes so future appends start at a clean frame.
    if (!wal_.Truncate(log.records, error)) return false;
  }
  if (!log.records.empty()) {
    ops_ = std::move(log.records);
    DbVersion next;
    next.epoch = current_.epoch + 1;
    next.base = current_.base;
    next.delta = BuildDeltaView(*next.base, ops_, next.epoch);
    Publish(std::move(next));
  }
  return true;
}

Database MaterializeDatabase(const DbView& view,
                             std::vector<std::vector<uint32_t>>* old_to_new) {
  Database merged;
  if (old_to_new != nullptr) {
    old_to_new->assign(view.num_relations(), {});
  }
  for (int r = 0; r < view.num_relations(); ++r) {
    const Relation& src = view.relation(r);
    Relation fresh(src.name(), src.columns());
    const uint32_t total = view.TotalRows(r);
    std::vector<uint32_t>* map = nullptr;
    if (old_to_new != nullptr) {
      (*old_to_new)[r].assign(total, UINT32_MAX);
      map = &(*old_to_new)[r];
    }
    std::vector<Value> values(src.num_columns());
    uint32_t next_row = 0;
    for (uint32_t row = 0; row < total; ++row) {
      if (!view.IsLive(r, row)) continue;
      for (int c = 0; c < src.num_columns(); ++c) {
        if (src.columns()[c].type == ColumnType::kId) {
          values[c] = view.IdAt(r, c, row);
        } else {
          values[c] = std::string(view.TextAt(r, c, row));
        }
      }
      fresh.AppendRow(values);
      if (map != nullptr) (*map)[row] = next_row;
      ++next_row;
    }
    merged.AddRelation(std::move(fresh));
  }
  for (const ForeignKey& fk : view.foreign_keys()) {
    const Relation& from = view.relation(fk.from_rel);
    const Relation& to = view.relation(fk.to_rel);
    merged.AddForeignKey(from.name(), from.columns()[fk.from_col].name,
                         to.name(), to.columns()[fk.to_col].name);
  }
  merged.BuildIndexes();
  return merged;
}

bool LiveDatabase::Compact(const std::string& snapshot_path,
                           std::string* error, CompactionStats* stats) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (ops_.empty()) return true;  // nothing to fold
  if (wal_.is_open() && snapshot_path.empty()) {
    if (error != nullptr) {
      *error =
          "compaction with a WAL attached needs a snapshot path: truncating "
          "the log is only crash-safe if the merged base is durable";
    }
    return false;
  }
  ScopedSpan compact_span(trace_, SpanKind::kCompaction);
  Stopwatch timer;
  const size_t merged_ops = ops_.size();
  size_t merged_appends = 0;
  for (const WalRecord& op : ops_) {
    if (op.kind == WalRecord::kAppend) ++merged_appends;
  }

  Database merged = MaterializeDatabase(current_.view());
  bool snapshot_written = false;
  if (!snapshot_path.empty()) {
    // Temp + rename: a reader still mapping the previous snapshot keeps its
    // (now unlinked) inode; the path atomically points at the new epoch.
    const std::string tmp = snapshot_path + ".compact.tmp";
    if (!WriteSnapshot(merged, tmp, error)) return false;
    std::error_code ec;
    std::filesystem::rename(tmp, snapshot_path, ec);
    if (ec) {
      if (error != nullptr) {
        *error = "cannot rename " + tmp + " over " + snapshot_path + ": " +
                 ec.message();
      }
      return false;
    }
    snapshot_written = true;
  }
  if (wal_.is_open() && !wal_.Truncate({}, error)) return false;

  DbVersion next;
  next.epoch = current_.epoch + 1;
  next.base = std::make_shared<const Database>(std::move(merged));
  next.delta = nullptr;
  const uint64_t published_epoch = next.epoch;
  Publish(std::move(next));
  ops_.clear();

  if (stats != nullptr) {
    stats->epoch = published_epoch;
    stats->merged_appends = merged_appends;
    stats->merged_tombstones = merged_ops - merged_appends;
    stats->remaining_ops = 0;
    stats->seconds = timer.ElapsedSeconds();
    stats->snapshot_written = snapshot_written;
  }
  return true;
}

}  // namespace qbe
