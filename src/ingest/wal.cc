#include "ingest/wal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "util/hash64.h"

namespace qbe {
namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Bounds-checked little cursor over untrusted log bytes.
struct Cursor {
  const char* p;
  size_t remaining;

  bool U8(uint8_t* v) {
    if (remaining < 1) return false;
    *v = static_cast<uint8_t>(*p);
    ++p;
    --remaining;
    return true;
  }
  bool U32(uint32_t* v) {
    if (remaining < 4) return false;
    std::memcpy(v, p, 4);
    p += 4;
    remaining -= 4;
    return true;
  }
  bool I64(int64_t* v) {
    if (remaining < 8) return false;
    std::memcpy(v, p, 8);
    p += 8;
    remaining -= 8;
    return true;
  }
  bool Bytes(size_t n, std::string* out) {
    if (remaining < n) return false;
    out->assign(p, n);
    p += n;
    remaining -= n;
    return true;
  }
};

std::string EncodePayload(const WalRecord& record) {
  std::string payload;
  PutU32(&payload, record.rel);
  if (record.kind == WalRecord::kTombstone) {
    PutU32(&payload, record.row);
    return payload;
  }
  PutU32(&payload, static_cast<uint32_t>(record.values.size()));
  for (const Value& value : record.values) {
    if (std::holds_alternative<int64_t>(value)) {
      PutU8(&payload, 0);
      PutI64(&payload, std::get<int64_t>(value));
    } else {
      const std::string& text = std::get<std::string>(value);
      PutU8(&payload, 1);
      PutU32(&payload, static_cast<uint32_t>(text.size()));
      payload.append(text);
    }
  }
  return payload;
}

bool DecodePayload(uint32_t kind, const char* data, size_t len,
                   WalRecord* record) {
  Cursor cur{data, len};
  record->kind = kind;
  if (!cur.U32(&record->rel)) return false;
  if (kind == WalRecord::kTombstone) {
    return cur.U32(&record->row) && cur.remaining == 0;
  }
  uint32_t num_cells = 0;
  if (!cur.U32(&num_cells)) return false;
  // A cell is at least 2 bytes (tag + empty text length would be 5; id is
  // 9) — reject counts the payload cannot possibly hold before reserving.
  if (num_cells > len) return false;
  record->values.clear();
  record->values.reserve(num_cells);
  for (uint32_t c = 0; c < num_cells; ++c) {
    uint8_t tag = 0;
    if (!cur.U8(&tag)) return false;
    if (tag == 0) {
      int64_t v = 0;
      if (!cur.I64(&v)) return false;
      record->values.emplace_back(v);
    } else if (tag == 1) {
      uint32_t bytes = 0;
      std::string text;
      if (!cur.U32(&bytes) || !cur.Bytes(bytes, &text)) return false;
      record->values.emplace_back(std::move(text));
    } else {
      return false;
    }
  }
  return cur.remaining == 0;
}

}  // namespace

std::string EncodeWalHeader() {
  std::string header;
  PutU64(&header, kWalMagic);
  PutU32(&header, kWalVersion);
  PutU32(&header, 0);
  return header;
}

void EncodeWalRecord(const WalRecord& record, std::string* out) {
  std::string payload = EncodePayload(record);
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, record.kind);
  frame.append(payload);
  uint64_t checksum = Hash64(frame.data(), frame.size());
  out->append(frame);
  PutU64(out, checksum);
}

WalReadResult ReadWal(const std::string& path) {
  WalReadResult result;
  if (!std::filesystem::exists(path)) {
    result.ok = true;  // no log yet — nothing to replay
    return result;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.error = "cannot open WAL " + path;
    return result;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string header = EncodeWalHeader();
  if (bytes.size() < header.size()) {
    result.error = "WAL " + path + " is shorter than its 16-byte header";
    return result;
  }
  if (std::memcmp(bytes.data(), header.data(), 8) != 0) {
    result.error = "WAL " + path + " has a bad magic number";
    return result;
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, 4);
  if (version != kWalVersion) {
    result.error = "WAL " + path + " has unsupported version " +
                   std::to_string(version);
    return result;
  }

  size_t offset = header.size();
  while (offset < bytes.size()) {
    size_t remaining = bytes.size() - offset;
    if (remaining < 8) {
      result.truncated_tail = true;  // torn mid-frame-header
      break;
    }
    uint32_t payload_bytes = 0;
    uint32_t kind = 0;
    std::memcpy(&payload_bytes, bytes.data() + offset, 4);
    std::memcpy(&kind, bytes.data() + offset + 4, 4);
    const size_t frame_bytes = 8 + static_cast<size_t>(payload_bytes) + 8;
    if (remaining < frame_bytes) {
      result.truncated_tail = true;  // torn mid-payload or mid-checksum
      break;
    }
    uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + offset + 8 + payload_bytes, 8);
    uint64_t computed = Hash64(bytes.data() + offset, 8 + payload_bytes);
    if (stored != computed) {
      result.error = "WAL " + path + ": record " +
                     std::to_string(result.records.size()) + " at offset " +
                     std::to_string(offset) + " fails its checksum";
      return result;
    }
    if (kind != WalRecord::kAppend && kind != WalRecord::kTombstone) {
      result.error = "WAL " + path + ": record " +
                     std::to_string(result.records.size()) +
                     " has unknown kind " + std::to_string(kind);
      return result;
    }
    WalRecord record;
    if (!DecodePayload(kind, bytes.data() + offset + 8, payload_bytes,
                       &record)) {
      result.error = "WAL " + path + ": record " +
                     std::to_string(result.records.size()) +
                     " has an undecodable payload";
      return result;
    }
    result.records.push_back(std::move(record));
    offset += frame_bytes;
  }
  result.ok = true;
  return result;
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(static_cast<FILE*>(file_));
    file_ = nullptr;
  }
}

bool WalWriter::Open(const std::string& path, std::string* error) {
  Close();
  path_ = path;
  bool needs_header = !std::filesystem::exists(path) ||
                      std::filesystem::file_size(path) == 0;
  FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open WAL " + path + " for append: " +
               std::strerror(errno);
    }
    return false;
  }
  file_ = f;
  if (needs_header) {
    const std::string header = EncodeWalHeader();
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
      if (error != nullptr) *error = "cannot write WAL header to " + path;
      Close();
      return false;
    }
  }
  return true;
}

bool WalWriter::Append(const WalRecord& record, std::string* error) {
  if (file_ == nullptr) {
    if (error != nullptr) *error = "WAL writer is not open";
    return false;
  }
  std::string frame;
  EncodeWalRecord(record, &frame);
  if (std::fwrite(frame.data(), 1, frame.size(),
                  static_cast<FILE*>(file_)) != frame.size()) {
    if (error != nullptr) *error = "short write appending to WAL " + path_;
    return false;
  }
  return true;
}

bool WalWriter::Sync(std::string* error) {
  if (file_ == nullptr) {
    if (error != nullptr) *error = "WAL writer is not open";
    return false;
  }
  FILE* f = static_cast<FILE*>(file_);
  if (std::fflush(f) != 0) {
    if (error != nullptr) *error = "fflush failed on WAL " + path_;
    return false;
  }
#ifndef _WIN32
  if (fsync(fileno(f)) != 0) {
    if (error != nullptr) *error = "fsync failed on WAL " + path_;
    return false;
  }
#endif
  return true;
}

bool WalWriter::Truncate(const std::vector<WalRecord>& records,
                         std::string* error) {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp;
      return false;
    }
    std::string bytes = EncodeWalHeader();
    for (const WalRecord& record : records) EncodeWalRecord(record, &bytes);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      if (error != nullptr) *error = "short write to " + tmp;
      return false;
    }
  }
  Close();
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp + " over " + path_ + ": " + ec.message();
    }
    return false;
  }
  return Open(path_, error);
}

}  // namespace qbe
