#include "ingest/delta.h"

#include <algorithm>
#include <numeric>

#include "text/tokenizer.h"
#include "util/check.h"

namespace qbe {

namespace {

uint64_t PackPosting(uint32_t row, uint32_t pos) {
  return (static_cast<uint64_t>(row) << 32) | pos;
}

}  // namespace

uint32_t DeltaView::InternDeltaToken(std::string_view token) {
  auto it = delta_token_ids_.find(token);
  if (it != delta_token_ids_.end()) return it->second;
  delta_tokens_.emplace_back(token);
  const uint32_t id =
      base_dict_size + static_cast<uint32_t>(delta_tokens_.size() - 1);
  delta_token_ids_.emplace(std::string_view(delta_tokens_.back()), id);
  return id;
}

void DeltaView::MatchPhraseInto(int rel, int gid, std::span<const uint32_t> ids,
                                std::vector<uint32_t>* rows) const {
  const RelDelta& rd = rels[rel];
  if (rd.rows.empty()) return;
  if (ids.empty()) {
    for (size_t i = 0; i < rd.rows.size(); ++i) {
      if (rd.row_live[i]) rows->push_back(rd.base_rows + i);
    }
    return;
  }
  auto git = gids.find(gid);
  if (git == gids.end()) return;
  const GidDelta& gd = git->second;
  std::vector<const std::vector<uint64_t>*> lists(ids.size());
  for (size_t k = 0; k < ids.size(); ++k) {
    if (ids[k] == TokenDict::kNoToken) return;
    auto pit = gd.postings.find(ids[k]);
    if (pit == gd.postings.end()) return;
    lists[k] = &pit->second;
  }
  uint32_t last = UINT32_MAX;
  for (uint64_t p0 : *lists[0]) {
    const uint32_t row = static_cast<uint32_t>(p0 >> 32);
    if (row == last) continue;  // one hit per row is enough
    const uint32_t pos = static_cast<uint32_t>(p0);
    bool ok = true;
    for (size_t k = 1; k < ids.size() && ok; ++k) {
      const uint64_t want = PackPosting(row, pos + static_cast<uint32_t>(k));
      ok = std::binary_search(lists[k]->begin(), lists[k]->end(), want);
    }
    if (ok) {
      rows->push_back(row);
      last = row;
    }
  }
}

void DeltaView::MatchExactInto(int rel, int gid, std::span<const uint32_t> ids,
                               std::vector<uint32_t>* rows) const {
  const RelDelta& rd = rels[rel];
  if (rd.rows.empty()) return;
  auto git = gids.find(gid);
  if (ids.empty()) {
    // A cell "equals" the empty phrase iff it tokenizes to nothing
    // (mirrors InvertedIndex::MatchExactIdsInto).
    for (size_t i = 0; i < rd.rows.size(); ++i) {
      const bool empty_cell =
          git == gids.end() || git->second.row_token_counts[i] == 0;
      if (rd.row_live[i] && empty_cell) rows->push_back(rd.base_rows + i);
    }
    return;
  }
  if (git == gids.end()) return;
  const GidDelta& gd = git->second;
  std::vector<const std::vector<uint64_t>*> lists(ids.size());
  for (size_t k = 0; k < ids.size(); ++k) {
    if (ids[k] == TokenDict::kNoToken) return;
    auto pit = gd.postings.find(ids[k]);
    if (pit == gd.postings.end()) return;
    lists[k] = &pit->second;
  }
  const uint32_t want_count = static_cast<uint32_t>(ids.size());
  for (uint64_t p0 : *lists[0]) {
    if (static_cast<uint32_t>(p0) != 0) continue;  // must start the cell
    const uint32_t row = static_cast<uint32_t>(p0 >> 32);
    if (gd.row_token_counts[row - rd.base_rows] != want_count) continue;
    bool ok = true;
    for (size_t k = 1; k < ids.size() && ok; ++k) {
      const uint64_t want = PackPosting(row, static_cast<uint32_t>(k));
      ok = std::binary_search(lists[k]->begin(), lists[k]->end(), want);
    }
    if (ok) rows->push_back(row);
  }
}

bool DeltaView::AnyMatch(int rel, int gid, std::span<const uint32_t> ids) const {
  const RelDelta& rd = rels[rel];
  if (rd.rows.empty()) return false;
  if (ids.empty()) {
    for (char live : rd.row_live) {
      if (live) return true;
    }
    return false;
  }
  auto git = gids.find(gid);
  if (git == gids.end()) return false;
  const GidDelta& gd = git->second;
  std::vector<const std::vector<uint64_t>*> lists(ids.size());
  for (size_t k = 0; k < ids.size(); ++k) {
    if (ids[k] == TokenDict::kNoToken) return false;
    auto pit = gd.postings.find(ids[k]);
    if (pit == gd.postings.end()) return false;
    lists[k] = &pit->second;
  }
  for (uint64_t p0 : *lists[0]) {
    const uint32_t row = static_cast<uint32_t>(p0 >> 32);
    const uint32_t pos = static_cast<uint32_t>(p0);
    bool ok = true;
    for (size_t k = 1; k < ids.size() && ok; ++k) {
      const uint64_t want = PackPosting(row, pos + static_cast<uint32_t>(k));
      ok = std::binary_search(lists[k]->begin(), lists[k]->end(), want);
    }
    if (ok) return true;
  }
  return false;
}

std::shared_ptr<const DeltaView> BuildDeltaView(const Database& base,
                                                std::span<const WalRecord> ops,
                                                uint64_t epoch) {
  auto view = std::make_shared<DeltaView>();
  DeltaView& d = *view;
  d.epoch = epoch;
  d.num_ops = ops.size();
  d.base_dict_size = static_cast<uint32_t>(base.token_dict().size());

  const int num_rels = base.num_relations();
  d.rels.resize(num_rels);
  for (int r = 0; r < num_rels; ++r) {
    d.rels[r].base_rows = base.relation(r).num_rows();
  }

  // 1. Apply the op log: appended row storage + tombstone sets.
  for (const WalRecord& op : ops) {
    DeltaView::RelDelta& rd = d.rels[op.rel];
    if (op.kind == WalRecord::kAppend) {
      rd.rows.push_back(op.values);
      rd.row_live.push_back(1);
      ++d.appended_total;
    } else {
      QBE_CHECK(rd.tombstones.insert(op.row).second);
      if (op.row >= rd.base_rows) rd.row_live[op.row - rd.base_rows] = 0;
      ++d.tombstones_total;
    }
  }
  for (DeltaView::RelDelta& rd : d.rels) {
    rd.live_rows = rd.base_rows + static_cast<uint32_t>(rd.rows.size()) -
                   static_cast<uint32_t>(rd.tombstones.size());
  }

  // 2. Live PK values of appended rows, per PK-target column (the uniqueness
  // contract was already enforced at admission / replay validation).
  for (const ForeignKey& fk : base.foreign_keys()) {
    DeltaView::RelDelta& to_d = d.rels[fk.to_rel];
    auto& pk = to_d.pk_by_col[fk.to_col];  // create even when empty
    for (size_t i = 0; i < to_d.rows.size(); ++i) {
      if (!to_d.row_live[i]) continue;
      pk[std::get<int64_t>(to_d.rows[i][fk.to_col])] =
          to_d.base_rows + static_cast<uint32_t>(i);
    }
  }

  // 3. Delta inverted index: positional hash postings per text-column gid,
  // using exactly the base tokenization (ForEachToken) so overlay matches
  // are bit-compatible with a rebuilt CSR index.
  for (int r = 0; r < num_rels; ++r) {
    DeltaView::RelDelta& rd = d.rels[r];
    if (rd.rows.empty()) continue;
    const Relation& relation = base.relation(r);
    for (int c = 0; c < relation.num_columns(); ++c) {
      if (relation.columns()[c].type != ColumnType::kText) continue;
      const int gid = base.TextColumnGid({r, c});
      DeltaView::GidDelta& gd = d.gids[gid];
      gd.row_token_counts.resize(rd.rows.size(), 0);
      for (size_t i = 0; i < rd.rows.size(); ++i) {
        const uint32_t row = rd.base_rows + static_cast<uint32_t>(i);
        uint32_t pos = 0;
        ForEachToken(std::get<std::string>(rd.rows[i][c]),
                     [&](std::string_view token) {
                       uint32_t id = base.token_dict().Find(token);
                       if (id == TokenDict::kNoToken) {
                         id = d.InternDeltaToken(token);
                       }
                       if (rd.row_live[i]) {
                         gd.postings[id].push_back(PackPosting(row, pos));
                       }
                       ++pos;
                     });
        gd.row_token_counts[i] = pos;
      }
      if (gd.postings.empty() &&
          std::all_of(gd.row_token_counts.begin(), gd.row_token_counts.end(),
                      [](uint32_t n) { return n == 0; })) {
        d.gids.erase(gid);  // nothing indexed for this column after all
      }
    }
  }

  // 4. Per-edge join overlay.
  const int num_edges = static_cast<int>(base.foreign_keys().size());
  d.edges.resize(num_edges);
  for (int e = 0; e < num_edges; ++e) {
    const ForeignKey& fk = base.foreign_key(e);
    DeltaView::EdgeDelta& ed = d.edges[e];
    DeltaView::RelDelta& from_d = d.rels[fk.from_rel];
    DeltaView::RelDelta& to_d = d.rels[fk.to_rel];
    const auto& to_pk = to_d.pk_by_col[fk.to_col];

    auto resolve_parent = [&](int64_t key) -> int32_t {
      const int64_t p = base.PkLookup(fk.to_rel, fk.to_col, key);
      if (p >= 0 && d.IsLive(fk.to_rel, static_cast<uint32_t>(p))) {
        return static_cast<int32_t>(p);
      }
      auto it = to_pk.find(key);
      return it == to_pk.end() ? -1 : static_cast<int32_t>(it->second);
    };

    // Appended from-rows, resolved against this epoch's final liveness.
    ed.delta_parent.resize(from_d.rows.size(), -1);
    for (size_t i = 0; i < from_d.rows.size(); ++i) {
      if (!from_d.row_live[i]) continue;
      const int32_t parent =
          resolve_parent(std::get<int64_t>(from_d.rows[i][fk.from_col]));
      ed.delta_parent[i] = parent;
      if (parent >= 0) {
        ed.extra_children[parent].push_back(from_d.base_rows +
                                            static_cast<uint32_t>(i));
      }
    }

    // Base from-rows whose FK value now resolves to a live appended PK row:
    // previously-dangling rows gaining a parent, and children of a
    // tombstoned PK row reparented by a delete-then-reinsert.
    for (const auto& [key, to_row] : to_pk) {
      const std::vector<uint32_t>* referers = base.FkLookup(e, key);
      if (referers == nullptr) continue;
      for (uint32_t r : *referers) {
        if (!d.IsLive(fk.from_rel, r)) continue;
        const int32_t p = base.ParentRowOf(e, r);
        if (p >= 0 && d.IsLive(fk.to_rel, static_cast<uint32_t>(p))) continue;
        ed.revalidated.emplace(r, static_cast<int32_t>(to_row));
        ed.extra_children[to_row].push_back(r);
      }
    }
    ed.revalidated_rows.reserve(ed.revalidated.size());
    for (const auto& [r, t] : ed.revalidated) ed.revalidated_rows.push_back(r);
    std::sort(ed.revalidated_rows.begin(), ed.revalidated_rows.end());

    ed.extra_referenced.reserve(ed.extra_children.size());
    for (auto& [to_row, children] : ed.extra_children) {
      std::sort(children.begin(), children.end());
      ed.extra_referenced.push_back(to_row);
    }
    std::sort(ed.extra_referenced.begin(), ed.extra_referenced.end());

    // Base to-rows whose last live referencing row was tombstoned.
    for (uint32_t r : from_d.tombstones) {
      if (r >= from_d.base_rows) continue;
      const int32_t p = base.ParentRowOf(e, r);
      if (p < 0 || !d.IsLive(fk.to_rel, static_cast<uint32_t>(p))) continue;
      if (ed.dropped_referenced.count(static_cast<uint32_t>(p)) != 0) continue;
      if (ed.extra_children.count(static_cast<uint32_t>(p)) != 0) continue;
      bool any_live = false;
      for (uint32_t child :
           base.ChildRowsOf(e, static_cast<uint32_t>(p))) {
        if (d.IsLive(fk.from_rel, child)) {
          any_live = true;
          break;
        }
      }
      if (!any_live) ed.dropped_referenced.insert(static_cast<uint32_t>(p));
    }

    ed.affected = !from_d.rows.empty() || !from_d.tombstones.empty() ||
                  !to_d.tombstones.empty() || !ed.revalidated.empty();
  }
  return view;
}

}  // namespace qbe
