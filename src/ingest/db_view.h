#ifndef QBE_INGEST_DB_VIEW_H_
#define QBE_INGEST_DB_VIEW_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/delta.h"
#include "storage/database.h"

namespace qbe {

/// Version-aware read facade: one immutable base Database plus an optional
/// immutable DeltaView overlay. Every query kernel (executor semijoins, text
/// matching, candidate generation) reads through this instead of the
/// Database directly, so a pinned epoch — base + delta pair — behaves
/// exactly like a cold load of the merged data (DESIGN.md §12).
///
/// Cheap value type (two pointers): copy freely. With a null/empty delta
/// every method forwards straight to the base structures, keeping the
/// read-only hot path identical to the pre-ingest code.
///
/// Row ids are global: base rows [0, base_rows) then appended rows. Methods
/// returning row sets return live rows only, ascending. Span-returning join
/// reads take a caller scratch vector and alias the base arrays when the
/// overlay does not affect the edge (zero-copy on the common path).
class DbView {
 public:
  DbView() = default;
  explicit DbView(const Database& base) : base_(&base) {}
  DbView(const Database& base, const DeltaView* delta)
      : base_(&base), delta_(delta != nullptr && !delta->empty() ? delta
                                                                 : nullptr) {}

  const Database& base() const { return *base_; }
  const DeltaView* delta() const { return delta_; }
  /// True when reads are pure base passthrough (no overlay in effect).
  bool plain() const { return delta_ == nullptr; }

  // --- catalog (immutable across epochs; always the base's) ---------------

  int num_relations() const { return base_->num_relations(); }
  const Relation& relation(int rel) const { return base_->relation(rel); }
  const std::vector<ForeignKey>& foreign_keys() const {
    return base_->foreign_keys();
  }
  const ForeignKey& foreign_key(int edge) const {
    return base_->foreign_key(edge);
  }
  int TextColumnGid(const ColumnRef& ref) const {
    return base_->TextColumnGid(ref);
  }
  const ColumnRef& TextColumnByGid(int gid) const {
    return base_->TextColumnByGid(gid);
  }

  // --- rows ---------------------------------------------------------------

  /// Base + appended rows: the size of this relation's global id space
  /// (bitmap domain), dead rows included.
  uint32_t TotalRows(int rel) const {
    return delta_ == nullptr ? base_->relation(rel).num_rows()
                             : delta_->TotalRows(rel);
  }

  uint32_t LiveRows(int rel) const {
    return delta_ == nullptr ? base_->relation(rel).num_rows()
                             : delta_->rels[rel].live_rows;
  }

  bool IsLive(int rel, uint32_t row) const {
    return delta_ == nullptr || delta_->IsLive(rel, row);
  }

  bool RelHasTombstones(int rel) const {
    return delta_ != nullptr && !delta_->rels[rel].tombstones.empty();
  }

  // --- cell access ----------------------------------------------------------

  std::string_view TextAt(int rel, int col, uint32_t row) const;
  int64_t IdAt(int rel, int col, uint32_t row) const;

  // --- tokens ---------------------------------------------------------------

  /// Id of `token`: base dictionary first, then the overlay's delta
  /// dictionary (ids >= base size), else TokenDict::kNoToken.
  uint32_t FindToken(std::string_view token) const {
    const uint32_t id = base_->token_dict().Find(token);
    if (id != TokenDict::kNoToken || delta_ == nullptr) return id;
    return delta_->FindDeltaToken(token);
  }

  /// Maps `tokens` to ids (kNoToken for unseen), into `*out` (cleared).
  void IdsOfInto(const std::vector<std::string>& tokens,
                 std::vector<uint32_t>* out) const;

  std::vector<uint32_t> IdsOf(const std::vector<std::string>& tokens) const {
    std::vector<uint32_t> ids;
    IdsOfInto(tokens, &ids);
    return ids;
  }

  // --- text matching (live rows only, ascending global ids) -----------------

  void MatchPhraseIdsInto(const ColumnRef& col, std::span<const uint32_t> ids,
                          std::vector<uint32_t>* rows) const;
  void MatchExactIdsInto(const ColumnRef& col, std::span<const uint32_t> ids,
                         std::vector<uint32_t>* rows) const;

  /// Number of live rows whose cell contains the phrase (RankScore).
  size_t MatchCount(const ColumnRef& col, std::span<const uint32_t> ids) const;

  bool AnyMatch(const ColumnRef& col, std::span<const uint32_t> ids) const;

  // --- candidate generation -------------------------------------------------

  /// Gids of text columns with at least one row containing the phrase,
  /// ascending: the base column index's answer merged with the overlay's
  /// columns. May overreport columns whose only containing rows are
  /// tombstoned — candidate generation tolerates supersets (verification is
  /// exact); it must never underreport.
  void ColumnsContainingIdsInto(std::span<const uint32_t> ids,
                                std::vector<int>* gids) const;

  // --- joins ----------------------------------------------------------------

  /// Conservative: true only when the base guarantee holds AND the overlay
  /// does not touch this edge. False routes semijoins through
  /// ValidFromRows, which is always exact.
  bool EdgeHasNoDangling(int edge) const {
    return base_->EdgeHasNoDangling(edge) &&
           (delta_ == nullptr || !delta_->edges[edge].affected);
  }

  /// Live row of `to_rel` that `from_row` references via `edge`, or -1
  /// (dangling, or the referenced row is tombstoned and not reinserted).
  int32_t ParentRowOf(int edge, uint32_t from_row) const;

  /// Live rows of `from_rel` referencing `to_row` via `edge`, ascending.
  std::span<const uint32_t> ChildRowsOf(int edge, uint32_t to_row,
                                        std::vector<uint32_t>* scratch) const;

  /// Live rows of `from_rel` whose FK resolves to a live PK row, ascending.
  std::span<const uint32_t> ValidFromRows(int edge,
                                          std::vector<uint32_t>* scratch) const;

  /// Live rows of `to_rel` referenced by at least one live `from_rel` row,
  /// ascending distinct.
  std::span<const uint32_t> ReferencedRows(
      int edge, std::vector<uint32_t>* scratch) const;

 private:
  const Database* base_ = nullptr;
  const DeltaView* delta_ = nullptr;  // null ⇒ plain passthrough
};

}  // namespace qbe

#endif  // QBE_INGEST_DB_VIEW_H_
