file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vary_sparsity_imdb.dir/bench_fig11_vary_sparsity_imdb.cc.o"
  "CMakeFiles/bench_fig11_vary_sparsity_imdb.dir/bench_fig11_vary_sparsity_imdb.cc.o.d"
  "bench_fig11_vary_sparsity_imdb"
  "bench_fig11_vary_sparsity_imdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vary_sparsity_imdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
