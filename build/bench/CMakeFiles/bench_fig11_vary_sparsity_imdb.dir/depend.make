# Empty dependencies file for bench_fig11_vary_sparsity_imdb.
# This may be replaced when dependencies are built.
