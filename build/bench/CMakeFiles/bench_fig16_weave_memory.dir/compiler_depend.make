# Empty compiler generated dependencies file for bench_fig16_weave_memory.
# This may be replaced when dependencies are built.
