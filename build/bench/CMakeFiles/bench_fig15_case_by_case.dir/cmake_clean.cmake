file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_case_by_case.dir/bench_fig15_case_by_case.cc.o"
  "CMakeFiles/bench_fig15_case_by_case.dir/bench_fig15_case_by_case.cc.o.d"
  "bench_fig15_case_by_case"
  "bench_fig15_case_by_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_case_by_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
