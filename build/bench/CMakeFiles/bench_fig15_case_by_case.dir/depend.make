# Empty dependencies file for bench_fig15_case_by_case.
# This may be replaced when dependencies are built.
