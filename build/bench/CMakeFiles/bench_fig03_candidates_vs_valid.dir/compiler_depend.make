# Empty compiler generated dependencies file for bench_fig03_candidates_vs_valid.
# This may be replaced when dependencies are built.
