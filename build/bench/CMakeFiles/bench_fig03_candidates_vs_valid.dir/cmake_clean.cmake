file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_candidates_vs_valid.dir/bench_fig03_candidates_vs_valid.cc.o"
  "CMakeFiles/bench_fig03_candidates_vs_valid.dir/bench_fig03_candidates_vs_valid.cc.o.d"
  "bench_fig03_candidates_vs_valid"
  "bench_fig03_candidates_vs_valid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_candidates_vs_valid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
