# Empty compiler generated dependencies file for bench_fig12_vary_value_length_imdb.
# This may be replaced when dependencies are built.
