file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_parameters.dir/bench_table3_parameters.cc.o"
  "CMakeFiles/bench_table3_parameters.dir/bench_table3_parameters.cc.o.d"
  "bench_table3_parameters"
  "bench_table3_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
