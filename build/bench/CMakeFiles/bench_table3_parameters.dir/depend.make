# Empty dependencies file for bench_table3_parameters.
# This may be replaced when dependencies are built.
