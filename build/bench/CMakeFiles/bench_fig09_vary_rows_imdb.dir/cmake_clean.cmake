file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_vary_rows_imdb.dir/bench_fig09_vary_rows_imdb.cc.o"
  "CMakeFiles/bench_fig09_vary_rows_imdb.dir/bench_fig09_vary_rows_imdb.cc.o.d"
  "bench_fig09_vary_rows_imdb"
  "bench_fig09_vary_rows_imdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_vary_rows_imdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
