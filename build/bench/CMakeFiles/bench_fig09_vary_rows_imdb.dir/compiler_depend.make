# Empty compiler generated dependencies file for bench_fig09_vary_rows_imdb.
# This may be replaced when dependencies are built.
