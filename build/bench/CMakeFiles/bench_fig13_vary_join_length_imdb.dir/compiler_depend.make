# Empty compiler generated dependencies file for bench_fig13_vary_join_length_imdb.
# This may be replaced when dependencies are built.
