file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_vary_join_length_imdb.dir/bench_fig13_vary_join_length_imdb.cc.o"
  "CMakeFiles/bench_fig13_vary_join_length_imdb.dir/bench_fig13_vary_join_length_imdb.cc.o.d"
  "bench_fig13_vary_join_length_imdb"
  "bench_fig13_vary_join_length_imdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_vary_join_length_imdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
