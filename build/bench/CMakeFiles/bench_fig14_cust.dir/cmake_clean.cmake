file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cust.dir/bench_fig14_cust.cc.o"
  "CMakeFiles/bench_fig14_cust.dir/bench_fig14_cust.cc.o.d"
  "bench_fig14_cust"
  "bench_fig14_cust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
