# Empty dependencies file for bench_fig14_cust.
# This may be replaced when dependencies are built.
