file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_weave_vs_filter.dir/bench_table4_weave_vs_filter.cc.o"
  "CMakeFiles/bench_table4_weave_vs_filter.dir/bench_table4_weave_vs_filter.cc.o.d"
  "bench_table4_weave_vs_filter"
  "bench_table4_weave_vs_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_weave_vs_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
