# Empty dependencies file for bench_table4_weave_vs_filter.
# This may be replaced when dependencies are built.
