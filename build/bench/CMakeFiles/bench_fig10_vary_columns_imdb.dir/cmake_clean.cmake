file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vary_columns_imdb.dir/bench_fig10_vary_columns_imdb.cc.o"
  "CMakeFiles/bench_fig10_vary_columns_imdb.dir/bench_fig10_vary_columns_imdb.cc.o.d"
  "bench_fig10_vary_columns_imdb"
  "bench_fig10_vary_columns_imdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vary_columns_imdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
