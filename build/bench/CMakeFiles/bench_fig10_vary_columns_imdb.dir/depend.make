# Empty dependencies file for bench_fig10_vary_columns_imdb.
# This may be replaced when dependencies are built.
