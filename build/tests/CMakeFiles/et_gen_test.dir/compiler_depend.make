# Empty compiler generated dependencies file for et_gen_test.
# This may be replaced when dependencies are built.
