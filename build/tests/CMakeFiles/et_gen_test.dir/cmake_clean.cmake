file(REMOVE_RECURSE
  "CMakeFiles/et_gen_test.dir/et_gen_test.cc.o"
  "CMakeFiles/et_gen_test.dir/et_gen_test.cc.o.d"
  "et_gen_test"
  "et_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
