# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for et_gen_test.
