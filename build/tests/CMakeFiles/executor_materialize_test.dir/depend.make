# Empty dependencies file for executor_materialize_test.
# This may be replaced when dependencies are built.
