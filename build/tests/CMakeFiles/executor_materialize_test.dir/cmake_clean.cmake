file(REMOVE_RECURSE
  "CMakeFiles/executor_materialize_test.dir/executor_materialize_test.cc.o"
  "CMakeFiles/executor_materialize_test.dir/executor_materialize_test.cc.o.d"
  "executor_materialize_test"
  "executor_materialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_materialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
