file(REMOVE_RECURSE
  "CMakeFiles/multi_edge_test.dir/multi_edge_test.cc.o"
  "CMakeFiles/multi_edge_test.dir/multi_edge_test.cc.o.d"
  "multi_edge_test"
  "multi_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
