# Empty compiler generated dependencies file for multi_edge_test.
# This may be replaced when dependencies are built.
