# Empty dependencies file for print_sweep_test.
# This may be replaced when dependencies are built.
