file(REMOVE_RECURSE
  "CMakeFiles/print_sweep_test.dir/print_sweep_test.cc.o"
  "CMakeFiles/print_sweep_test.dir/print_sweep_test.cc.o.d"
  "print_sweep_test"
  "print_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/print_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
