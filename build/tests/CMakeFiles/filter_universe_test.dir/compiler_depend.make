# Empty compiler generated dependencies file for filter_universe_test.
# This may be replaced when dependencies are built.
