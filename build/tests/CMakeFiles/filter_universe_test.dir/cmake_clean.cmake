file(REMOVE_RECURSE
  "CMakeFiles/filter_universe_test.dir/filter_universe_test.cc.o"
  "CMakeFiles/filter_universe_test.dir/filter_universe_test.cc.o.d"
  "filter_universe_test"
  "filter_universe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_universe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
