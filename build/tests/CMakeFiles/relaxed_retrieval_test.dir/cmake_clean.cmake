file(REMOVE_RECURSE
  "CMakeFiles/relaxed_retrieval_test.dir/relaxed_retrieval_test.cc.o"
  "CMakeFiles/relaxed_retrieval_test.dir/relaxed_retrieval_test.cc.o.d"
  "relaxed_retrieval_test"
  "relaxed_retrieval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxed_retrieval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
