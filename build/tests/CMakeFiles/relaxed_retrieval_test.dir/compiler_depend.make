# Empty compiler generated dependencies file for relaxed_retrieval_test.
# This may be replaced when dependencies are built.
