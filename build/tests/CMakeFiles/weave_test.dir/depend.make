# Empty dependencies file for weave_test.
# This may be replaced when dependencies are built.
