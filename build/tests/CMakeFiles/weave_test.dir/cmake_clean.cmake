file(REMOVE_RECURSE
  "CMakeFiles/weave_test.dir/weave_test.cc.o"
  "CMakeFiles/weave_test.dir/weave_test.cc.o.d"
  "weave_test"
  "weave_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
