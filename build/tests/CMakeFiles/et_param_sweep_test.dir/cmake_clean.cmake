file(REMOVE_RECURSE
  "CMakeFiles/et_param_sweep_test.dir/et_param_sweep_test.cc.o"
  "CMakeFiles/et_param_sweep_test.dir/et_param_sweep_test.cc.o.d"
  "et_param_sweep_test"
  "et_param_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_param_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
