# Empty dependencies file for example_table_test.
# This may be replaced when dependencies are built.
