file(REMOVE_RECURSE
  "CMakeFiles/example_table_test.dir/example_table_test.cc.o"
  "CMakeFiles/example_table_test.dir/example_table_test.cc.o.d"
  "example_table_test"
  "example_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
