file(REMOVE_RECURSE
  "CMakeFiles/filter_verifier_test.dir/filter_verifier_test.cc.o"
  "CMakeFiles/filter_verifier_test.dir/filter_verifier_test.cc.o.d"
  "filter_verifier_test"
  "filter_verifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
