# Empty compiler generated dependencies file for filter_verifier_test.
# This may be replaced when dependencies are built.
