# Empty dependencies file for cust_integration_test.
# This may be replaced when dependencies are built.
