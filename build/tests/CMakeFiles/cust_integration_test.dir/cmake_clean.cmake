file(REMOVE_RECURSE
  "CMakeFiles/cust_integration_test.dir/cust_integration_test.cc.o"
  "CMakeFiles/cust_integration_test.dir/cust_integration_test.cc.o.d"
  "cust_integration_test"
  "cust_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cust_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
