# Empty compiler generated dependencies file for candidate_gen_test.
# This may be replaced when dependencies are built.
