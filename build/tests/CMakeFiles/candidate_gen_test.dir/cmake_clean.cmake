file(REMOVE_RECURSE
  "CMakeFiles/candidate_gen_test.dir/candidate_gen_test.cc.o"
  "CMakeFiles/candidate_gen_test.dir/candidate_gen_test.cc.o.d"
  "candidate_gen_test"
  "candidate_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
