file(REMOVE_RECURSE
  "CMakeFiles/sql_render_test.dir/sql_render_test.cc.o"
  "CMakeFiles/sql_render_test.dir/sql_render_test.cc.o.d"
  "sql_render_test"
  "sql_render_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
