# Empty dependencies file for sql_render_test.
# This may be replaced when dependencies are built.
