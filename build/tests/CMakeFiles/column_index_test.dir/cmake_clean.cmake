file(REMOVE_RECURSE
  "CMakeFiles/column_index_test.dir/column_index_test.cc.o"
  "CMakeFiles/column_index_test.dir/column_index_test.cc.o.d"
  "column_index_test"
  "column_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
