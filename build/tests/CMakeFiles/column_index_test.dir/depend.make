# Empty dependencies file for column_index_test.
# This may be replaced when dependencies are built.
