file(REMOVE_RECURSE
  "CMakeFiles/qbe_cli.dir/qbe_cli.cc.o"
  "CMakeFiles/qbe_cli.dir/qbe_cli.cc.o.d"
  "qbe_cli"
  "qbe_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
