# Empty dependencies file for qbe_cli.
# This may be replaced when dependencies are built.
