file(REMOVE_RECURSE
  "CMakeFiles/schema_explorer.dir/schema_explorer.cpp.o"
  "CMakeFiles/schema_explorer.dir/schema_explorer.cpp.o.d"
  "schema_explorer"
  "schema_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
