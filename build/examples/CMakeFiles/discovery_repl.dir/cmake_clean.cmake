file(REMOVE_RECURSE
  "CMakeFiles/discovery_repl.dir/discovery_repl.cpp.o"
  "CMakeFiles/discovery_repl.dir/discovery_repl.cpp.o.d"
  "discovery_repl"
  "discovery_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
