# Empty compiler generated dependencies file for discovery_repl.
# This may be replaced when dependencies are built.
