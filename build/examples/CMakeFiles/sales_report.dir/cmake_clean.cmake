file(REMOVE_RECURSE
  "CMakeFiles/sales_report.dir/sales_report.cpp.o"
  "CMakeFiles/sales_report.dir/sales_report.cpp.o.d"
  "sales_report"
  "sales_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sales_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
