# Empty compiler generated dependencies file for sales_report.
# This may be replaced when dependencies are built.
