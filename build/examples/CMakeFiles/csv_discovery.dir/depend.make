# Empty dependencies file for csv_discovery.
# This may be replaced when dependencies are built.
