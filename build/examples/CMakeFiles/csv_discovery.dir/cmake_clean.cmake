file(REMOVE_RECURSE
  "CMakeFiles/csv_discovery.dir/csv_discovery.cpp.o"
  "CMakeFiles/csv_discovery.dir/csv_discovery.cpp.o.d"
  "csv_discovery"
  "csv_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
