
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidate_gen.cc" "src/CMakeFiles/qbe.dir/core/candidate_gen.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/candidate_gen.cc.o.d"
  "/root/repo/src/core/candidate_query.cc" "src/CMakeFiles/qbe.dir/core/candidate_query.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/candidate_query.cc.o.d"
  "/root/repo/src/core/discovery.cc" "src/CMakeFiles/qbe.dir/core/discovery.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/discovery.cc.o.d"
  "/root/repo/src/core/example_table.cc" "src/CMakeFiles/qbe.dir/core/example_table.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/example_table.cc.o.d"
  "/root/repo/src/core/execute_all.cc" "src/CMakeFiles/qbe.dir/core/execute_all.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/execute_all.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/qbe.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/explain.cc.o.d"
  "/root/repo/src/core/filter.cc" "src/CMakeFiles/qbe.dir/core/filter.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/filter.cc.o.d"
  "/root/repo/src/core/filter_universe.cc" "src/CMakeFiles/qbe.dir/core/filter_universe.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/filter_universe.cc.o.d"
  "/root/repo/src/core/filter_verifier.cc" "src/CMakeFiles/qbe.dir/core/filter_verifier.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/filter_verifier.cc.o.d"
  "/root/repo/src/core/keyword_search.cc" "src/CMakeFiles/qbe.dir/core/keyword_search.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/keyword_search.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/qbe.dir/core/session.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/session.cc.o.d"
  "/root/repo/src/core/simple_prune.cc" "src/CMakeFiles/qbe.dir/core/simple_prune.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/simple_prune.cc.o.d"
  "/root/repo/src/core/verify_all.cc" "src/CMakeFiles/qbe.dir/core/verify_all.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/verify_all.cc.o.d"
  "/root/repo/src/core/weave.cc" "src/CMakeFiles/qbe.dir/core/weave.cc.o" "gcc" "src/CMakeFiles/qbe.dir/core/weave.cc.o.d"
  "/root/repo/src/datagen/cust_like.cc" "src/CMakeFiles/qbe.dir/datagen/cust_like.cc.o" "gcc" "src/CMakeFiles/qbe.dir/datagen/cust_like.cc.o.d"
  "/root/repo/src/datagen/et_gen.cc" "src/CMakeFiles/qbe.dir/datagen/et_gen.cc.o" "gcc" "src/CMakeFiles/qbe.dir/datagen/et_gen.cc.o.d"
  "/root/repo/src/datagen/imdb_like.cc" "src/CMakeFiles/qbe.dir/datagen/imdb_like.cc.o" "gcc" "src/CMakeFiles/qbe.dir/datagen/imdb_like.cc.o.d"
  "/root/repo/src/datagen/names.cc" "src/CMakeFiles/qbe.dir/datagen/names.cc.o" "gcc" "src/CMakeFiles/qbe.dir/datagen/names.cc.o.d"
  "/root/repo/src/datagen/retailer.cc" "src/CMakeFiles/qbe.dir/datagen/retailer.cc.o" "gcc" "src/CMakeFiles/qbe.dir/datagen/retailer.cc.o.d"
  "/root/repo/src/datagen/text_gen.cc" "src/CMakeFiles/qbe.dir/datagen/text_gen.cc.o" "gcc" "src/CMakeFiles/qbe.dir/datagen/text_gen.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/qbe.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/qbe.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/sql_render.cc" "src/CMakeFiles/qbe.dir/exec/sql_render.cc.o" "gcc" "src/CMakeFiles/qbe.dir/exec/sql_render.cc.o.d"
  "/root/repo/src/exec/stats.cc" "src/CMakeFiles/qbe.dir/exec/stats.cc.o" "gcc" "src/CMakeFiles/qbe.dir/exec/stats.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/qbe.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/qbe.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/CMakeFiles/qbe.dir/harness/table_printer.cc.o" "gcc" "src/CMakeFiles/qbe.dir/harness/table_printer.cc.o.d"
  "/root/repo/src/schema/join_tree.cc" "src/CMakeFiles/qbe.dir/schema/join_tree.cc.o" "gcc" "src/CMakeFiles/qbe.dir/schema/join_tree.cc.o.d"
  "/root/repo/src/schema/schema_graph.cc" "src/CMakeFiles/qbe.dir/schema/schema_graph.cc.o" "gcc" "src/CMakeFiles/qbe.dir/schema/schema_graph.cc.o.d"
  "/root/repo/src/schema/subtree_enum.cc" "src/CMakeFiles/qbe.dir/schema/subtree_enum.cc.o" "gcc" "src/CMakeFiles/qbe.dir/schema/subtree_enum.cc.o.d"
  "/root/repo/src/storage/catalog_io.cc" "src/CMakeFiles/qbe.dir/storage/catalog_io.cc.o" "gcc" "src/CMakeFiles/qbe.dir/storage/catalog_io.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/qbe.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/qbe.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/qbe.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/qbe.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/CMakeFiles/qbe.dir/storage/relation.cc.o" "gcc" "src/CMakeFiles/qbe.dir/storage/relation.cc.o.d"
  "/root/repo/src/text/column_index.cc" "src/CMakeFiles/qbe.dir/text/column_index.cc.o" "gcc" "src/CMakeFiles/qbe.dir/text/column_index.cc.o.d"
  "/root/repo/src/text/inverted_index.cc" "src/CMakeFiles/qbe.dir/text/inverted_index.cc.o" "gcc" "src/CMakeFiles/qbe.dir/text/inverted_index.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/qbe.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/qbe.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/qbe.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/qbe.dir/util/rng.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/qbe.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/qbe.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/CMakeFiles/qbe.dir/util/zipf.cc.o" "gcc" "src/CMakeFiles/qbe.dir/util/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
