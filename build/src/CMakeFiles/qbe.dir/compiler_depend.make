# Empty compiler generated dependencies file for qbe.
# This may be replaced when dependencies are built.
