file(REMOVE_RECURSE
  "libqbe.a"
)
