// qbe_shard — split a database into FK-co-located shard snapshots and
// inspect shardset manifests (DESIGN.md §15).
//
//   qbe_shard split --dataset retailer|imdb|cust [--scale S] [--seed N]
//                   --shards N [--mode hash|range] [--shard-seed S]
//                   --out PREFIX
//   qbe_shard split --db DIR | --snapshot FILE.qbes ... (same options)
//   qbe_shard info --shardset FILE.shardset
//
// `split` computes the join-component partition (union-find over every FK
// edge; whole components are indivisible), writes one `.qbes` snapshot per
// shard (PREFIX.shard<k>.qbes), and a `PREFIX.shardset` manifest that
// `qbe_serve --shardset` consumes. It prints the per-shard row counts so
// skew (e.g. a schema that collapses into one giant join component) is
// visible at split time rather than at serve time.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "datagen/cust_like.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "shard/partition.h"
#include "snapshot/snapshot.h"
#include "storage/catalog_io.h"
#include "storage/database.h"
#include "util/stopwatch.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: qbe_shard split --dataset retailer|imdb|cust [--scale S]\n"
      "                       [--seed N] --shards N [--mode hash|range]\n"
      "                       [--shard-seed S] --out PREFIX\n"
      "       qbe_shard split --db DIR | --snapshot FILE.qbes "
      "(same options)\n"
      "       qbe_shard info --shardset FILE.shardset\n");
}

int Split(int argc, char** argv) {
  std::string db_dir;
  std::string dataset;
  std::string snapshot_path;
  std::string out_prefix;
  std::string mode_name = "hash";
  double scale = 0.1;
  uint64_t seed = 20140622;
  uint64_t shard_seed = 0;
  int shards = 0;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--db") {
      if (const char* v = next()) db_dir = v;
    } else if (arg == "--dataset") {
      if (const char* v = next()) dataset = v;
    } else if (arg == "--snapshot") {
      if (const char* v = next()) snapshot_path = v;
    } else if (arg == "--out") {
      if (const char* v = next()) out_prefix = v;
    } else if (arg == "--scale") {
      if (const char* v = next()) scale = std::atof(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shard-seed") {
      if (const char* v = next()) shard_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shards") {
      if (const char* v = next()) shards = std::atoi(v);
    } else if (arg == "--mode") {
      if (const char* v = next()) mode_name = v;
    } else {
      PrintUsage();
      return 2;
    }
  }
  const int sources = (!db_dir.empty() ? 1 : 0) + (!dataset.empty() ? 1 : 0) +
                      (!snapshot_path.empty() ? 1 : 0);
  if (out_prefix.empty() || sources != 1 || shards < 1 || shards > 1024) {
    std::fprintf(stderr,
                 "split needs --out, --shards in [1,1024] and exactly one "
                 "of --db / --dataset / --snapshot\n");
    return 2;
  }
  std::optional<qbe::PartitionMode> mode = qbe::ParsePartitionMode(mode_name);
  if (!mode.has_value()) {
    std::fprintf(stderr, "unknown mode %s\n", mode_name.c_str());
    return 2;
  }

  qbe::Stopwatch build_timer;
  std::optional<qbe::Database> db;
  std::string error;
  if (!db_dir.empty()) {
    db = qbe::LoadDatabase(db_dir, &error);
  } else if (!snapshot_path.empty()) {
    db = qbe::Database::OpenSnapshot(snapshot_path, &error);
  } else if (dataset == "retailer") {
    db = qbe::MakeRetailerDatabase();
  } else if (dataset == "imdb") {
    db = qbe::MakeImdbLikeDatabase({scale, seed});
  } else if (dataset == "cust") {
    qbe::CustConfig config;
    config.scale = scale;
    config.seed = seed;
    db = qbe::MakeCustLikeDatabase(config);
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 2;
  }
  if (!db.has_value()) {
    std::fprintf(stderr, "failed to load database: %s\n", error.c_str());
    return 1;
  }

  qbe::PartitionOptions options;
  options.num_shards = shards;
  options.mode = *mode;
  options.seed = shard_seed;
  qbe::Stopwatch split_timer;
  qbe::PartitionPlan plan = qbe::ComputePartitionPlan(*db, options);
  std::vector<qbe::Database> shard_dbs = qbe::SplitDatabase(*db, plan);
  const double split_seconds = split_timer.ElapsedSeconds();

  // Skew report: per-shard row totals plus the max/mean ratio (1.0 =
  // perfectly balanced; one giant join component shows up as N here).
  const std::vector<uint64_t> rows = plan.RowsPerShard();
  uint64_t total = 0, max_rows = 0;
  for (uint64_t n : rows) {
    total += n;
    if (n > max_rows) max_rows = n;
  }
  std::printf("partitioned %llu rows into %d shards (%s): [",
              static_cast<unsigned long long>(total), shards,
              qbe::PartitionModeName(*mode));
  for (size_t s = 0; s < rows.size(); ++s) {
    std::printf("%s%llu", s == 0 ? "" : " ",
                static_cast<unsigned long long>(rows[s]));
  }
  const double mean =
      rows.empty() ? 0.0 : static_cast<double>(total) / rows.size();
  std::printf("], skew %.2f\n",
              mean > 0.0 ? static_cast<double>(max_rows) / mean : 1.0);

  qbe::ShardSet set;
  set.mode = *mode;
  set.seed = shard_seed;
  qbe::Stopwatch write_timer;
  for (int s = 0; s < shards; ++s) {
    const std::string path =
        out_prefix + ".shard" + std::to_string(s) + ".qbes";
    if (!qbe::WriteSnapshot(shard_dbs[s], path, &error)) {
      std::fprintf(stderr, "snapshot write failed: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    set.paths.push_back(path);
  }
  const std::string manifest = out_prefix + ".shardset";
  if (!qbe::WriteShardSet(manifest, set, &error)) {
    std::fprintf(stderr, "manifest write failed: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "wrote %d shard snapshots + %s "
      "(build %.3fs, partition %.3fs, write %.3fs)\n",
      shards, manifest.c_str(), build_timer.ElapsedSeconds() - split_seconds,
      split_seconds, write_timer.ElapsedSeconds());
  std::printf("serve with: qbe_serve --shardset %s\n", manifest.c_str());
  return 0;
}

int Info(int argc, char** argv) {
  std::string manifest;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shardset") == 0 && i + 1 < argc) {
      manifest = argv[++i];
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (manifest.empty()) {
    PrintUsage();
    return 2;
  }
  std::string error;
  std::optional<qbe::ShardSet> set = qbe::ReadShardSet(manifest, &error);
  if (!set.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("%s: %d shards, mode %s, seed %llu\n", manifest.c_str(),
              set->num_shards(), qbe::PartitionModeName(set->mode),
              static_cast<unsigned long long>(set->seed));
  for (int s = 0; s < set->num_shards(); ++s) {
    const std::string& path = set->paths[s];
    std::optional<qbe::SnapshotFileInfo> info =
        qbe::ReadSnapshotInfo(path, &error);
    if (!info.has_value()) {
      std::printf("  shard %d: %s (unreadable: %s)\n", s, path.c_str(),
                  error.c_str());
      continue;
    }
    std::printf("  shard %d: %s (%.1f MB, %zu sections)\n", s, path.c_str(),
                static_cast<double>(info->file_bytes) / 1e6,
                info->sections.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "split") return Split(argc - 2, argv + 2);
  if (command == "info") return Info(argc - 2, argv + 2);
  PrintUsage();
  return 2;
}
