// qbe_cli — command-line query discovery over a saved database directory.
//
//   qbe_cli --db DIR --row "Mike|ThinkPad|Office" --row "Mary|iPad|"
//           [--algorithm verifyall|simpleprune|filter|weave]
//           [--max-join-length N] [--min-row-support K]
//           [--explain] [--top N]
//   qbe_cli --snapshot FILE.qbes --row ...   mmap a qbe_snapshot build
//   qbe_cli --demo DIR      write the Figure 1 retailer database to DIR
//
// The database directory is the SaveDatabase/LoadDatabase format: one CSV
// per relation plus a schema.manifest declaring column types and foreign
// keys (hand-editable; see storage/catalog_io.h).

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "core/explain.h"
#include "datagen/retailer.h"
#include "storage/catalog_io.h"
#include "util/string_util.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: qbe_cli --db DIR --row \"cell|cell|...\" [--row ...]\n"
      "               [--algorithm verifyall|simpleprune|filter|weave]\n"
      "               [--max-join-length N] [--min-row-support K]\n"
      "               [--explain] [--top N]\n"
      "       qbe_cli --snapshot FILE.qbes --row ...\n"
      "       qbe_cli --demo DIR\n");
}

std::optional<qbe::Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "verifyall") return qbe::Algorithm::kVerifyAll;
  if (name == "simpleprune") return qbe::Algorithm::kSimplePrune;
  if (name == "filter") return qbe::Algorithm::kFilter;
  if (name == "filterexact") return qbe::Algorithm::kFilterExact;
  if (name == "weave") return qbe::Algorithm::kWeave;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_dir;
  std::string snapshot_path;
  std::string demo_dir;
  std::vector<std::vector<std::string>> rows;
  qbe::DiscoveryOptions options;
  bool explain = false;
  size_t top = 10;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--db") {
      if (const char* v = next()) db_dir = v;
    } else if (arg == "--snapshot") {
      if (const char* v = next()) snapshot_path = v;
    } else if (arg == "--demo") {
      if (const char* v = next()) demo_dir = v;
    } else if (arg == "--row") {
      if (const char* v = next()) rows.push_back(qbe::SplitString(v, '|'));
    } else if (arg == "--algorithm") {
      const char* v = next();
      std::optional<qbe::Algorithm> algo =
          v ? ParseAlgorithm(v) : std::nullopt;
      if (!algo.has_value()) {
        std::fprintf(stderr, "unknown algorithm\n");
        return 2;
      }
      options.algorithm = *algo;
    } else if (arg == "--max-join-length") {
      if (const char* v = next()) options.max_join_tree_size = std::atoi(v);
    } else if (arg == "--min-row-support") {
      if (const char* v = next()) options.min_row_support = std::atoi(v);
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--top") {
      if (const char* v = next()) top = static_cast<size_t>(std::atoll(v));
    } else {
      PrintUsage();
      return 2;
    }
  }

  if (!demo_dir.empty()) {
    qbe::Database db = qbe::MakeRetailerDatabase();
    if (!qbe::SaveDatabase(db, demo_dir)) {
      std::fprintf(stderr, "failed to write %s\n", demo_dir.c_str());
      return 1;
    }
    std::printf("wrote the Figure 1 retailer database to %s\n"
                "try: qbe_cli --db %s --row \"Mike|ThinkPad|Office\" "
                "--row \"Mary|iPad|\" --row \"Bob||Dropbox\"\n",
                demo_dir.c_str(), demo_dir.c_str());
    return 0;
  }

  if ((db_dir.empty() && snapshot_path.empty()) || rows.empty()) {
    PrintUsage();
    return 2;
  }
  std::string load_error;
  std::optional<qbe::Database> db =
      snapshot_path.empty() ? qbe::LoadDatabase(db_dir, &load_error)
                            : qbe::Database::OpenSnapshot(snapshot_path,
                                                          &load_error);
  if (!db.has_value()) {
    std::fprintf(stderr, "failed to load database: %s\n", load_error.c_str());
    return 1;
  }
  std::printf("loaded %d relations, %zu foreign keys, %d text columns\n",
              db->num_relations(), db->foreign_keys().size(),
              db->TotalTextColumns());

  size_t width = rows[0].size();
  qbe::ExampleTable et =
      qbe::ExampleTable::WithColumns(static_cast<int>(width));
  for (std::vector<std::string>& row : rows) {
    row.resize(width);
    et.AddRow(row);
  }

  if (explain) {
    std::printf("%s", qbe::ExplainDiscovery(*db, et, options).ToString()
                          .c_str());
    return 0;
  }
  qbe::DiscoveryResult result = qbe::DiscoverQueries(*db, et, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("%zu candidates, %lld verifications, %zu valid queries\n",
              result.num_candidates,
              static_cast<long long>(result.counters.verifications),
              result.queries.size());
  for (size_t i = 0; i < result.queries.size() && i < top; ++i) {
    std::printf("[%zu] score=%.3f rows=%d\n    %s\n", i,
                result.queries[i].score, result.queries[i].matched_rows,
                result.queries[i].sql.c_str());
  }
  return 0;
}
