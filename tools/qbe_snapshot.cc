// qbe_snapshot — build, verify and inspect `.qbes` binary snapshots
// (src/snapshot/): the zero-copy cold-start format qbe_serve and qbe_cli
// can mmap instead of re-parsing CSVs and rebuilding every index.
//
//   qbe_snapshot build --db DIR --out FILE.qbes
//   qbe_snapshot build --dataset retailer|imdb|cust [--scale S] --out FILE
//   qbe_snapshot verify FILE.qbes        full checksum + bounds check
//   qbe_snapshot info FILE.qbes          header + section directory dump
//   qbe_snapshot compact --snapshot FILE.qbes --wal FILE.qbel [--out FILE]
//                                        fold a WAL into a fresh snapshot
//
// `compact` is the offline form of the live compaction (DESIGN.md §12): it
// replays the append-only log onto the snapshot's base, rebuilds the CSR
// indexes over the merged live rows, writes the result (in place by
// default, via temp + rename) and truncates the log.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "datagen/cust_like.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "ingest/live_db.h"
#include "snapshot/snapshot.h"
#include "storage/catalog_io.h"
#include "storage/database.h"
#include "util/stopwatch.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: qbe_snapshot build --db DIR --out FILE.qbes\n"
      "       qbe_snapshot build --dataset retailer|imdb|cust [--scale S]\n"
      "                          [--seed N] --out FILE.qbes\n"
      "       qbe_snapshot verify FILE.qbes\n"
      "       qbe_snapshot info FILE.qbes\n"
      "       qbe_snapshot compact --snapshot FILE.qbes --wal FILE.qbel\n"
      "                            [--out FILE.qbes]\n");
}

int Build(int argc, char** argv) {
  std::string db_dir;
  std::string dataset;
  std::string out_path;
  double scale = 0.1;
  uint64_t seed = 20140622;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--db") {
      if (const char* v = next()) db_dir = v;
    } else if (arg == "--dataset") {
      if (const char* v = next()) dataset = v;
    } else if (arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else if (arg == "--scale") {
      if (const char* v = next()) scale = std::atof(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) seed = std::strtoull(v, nullptr, 10);
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (out_path.empty() || (db_dir.empty() == dataset.empty())) {
    std::fprintf(stderr,
                 "build needs --out and exactly one of --db / --dataset\n");
    return 2;
  }

  qbe::Stopwatch build_timer;
  std::optional<qbe::Database> db;
  if (!db_dir.empty()) {
    std::string load_error;
    db = qbe::LoadDatabase(db_dir, &load_error);
    if (!db.has_value()) {
      std::fprintf(stderr, "failed to load database: %s\n",
                   load_error.c_str());
      return 1;
    }
  } else if (dataset == "retailer") {
    db = qbe::MakeRetailerDatabase();
  } else if (dataset == "imdb") {
    db = qbe::MakeImdbLikeDatabase({scale, seed});
  } else if (dataset == "cust") {
    qbe::CustConfig config;
    config.scale = scale;
    config.seed = seed;
    db = qbe::MakeCustLikeDatabase(config);
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 2;
  }
  const double build_seconds = build_timer.ElapsedSeconds();

  qbe::Stopwatch write_timer;
  std::string write_error;
  if (!qbe::WriteSnapshot(*db, out_path, &write_error)) {
    std::fprintf(stderr, "snapshot write failed: %s\n", write_error.c_str());
    return 1;
  }
  std::optional<qbe::SnapshotFileInfo> info =
      qbe::ReadSnapshotInfo(out_path, &write_error);
  if (!info.has_value()) {
    std::fprintf(stderr, "snapshot reread failed: %s\n", write_error.c_str());
    return 1;
  }
  std::printf(
      "wrote %s: %.1f MB, %zu sections "
      "(database build %.3fs, snapshot write %.3fs)\n",
      out_path.c_str(), static_cast<double>(info->file_bytes) / 1e6,
      info->sections.size(), build_seconds, write_timer.ElapsedSeconds());
  return 0;
}

int Compact(int argc, char** argv) {
  std::string snapshot_path;
  std::string wal_path;
  std::string out_path;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--snapshot") {
      if (const char* v = next()) snapshot_path = v;
    } else if (arg == "--wal") {
      if (const char* v = next()) wal_path = v;
    } else if (arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (snapshot_path.empty() || wal_path.empty()) {
    std::fprintf(stderr, "compact needs --snapshot and --wal\n");
    return 2;
  }
  if (out_path.empty()) out_path = snapshot_path;

  std::string error;
  std::optional<qbe::Database> db =
      qbe::Database::OpenSnapshot(snapshot_path, &error);
  if (!db.has_value()) {
    std::fprintf(stderr, "failed to open snapshot: %s\n", error.c_str());
    return 1;
  }
  qbe::LiveDatabase live(std::move(*db));
  if (!live.AttachWal(wal_path, &error)) {
    std::fprintf(stderr, "failed to attach WAL: %s\n", error.c_str());
    return 1;
  }
  if (live.delta_ops() == 0) {
    std::printf("%s: WAL is empty, nothing to compact\n", wal_path.c_str());
    return 0;
  }
  qbe::Stopwatch timer;
  qbe::CompactionStats stats;
  if (!live.Compact(out_path, &error, &stats)) {
    std::fprintf(stderr, "compaction failed: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "compacted %zu appends + %zu tombstones into %s in %.3fs "
      "(epoch %llu); WAL truncated\n",
      stats.merged_appends, stats.merged_tombstones, out_path.c_str(),
      timer.ElapsedSeconds(), static_cast<unsigned long long>(stats.epoch));
  return 0;
}

int Verify(const std::string& path) {
  qbe::Stopwatch timer;
  std::string error;
  if (!qbe::VerifySnapshot(path, &error)) {
    std::fprintf(stderr, "FAIL: %s\n", error.c_str());
    return 1;
  }
  std::printf("OK: %s (all section checksums match, %.3fs)\n", path.c_str(),
              timer.ElapsedSeconds());
  return 0;
}

int Info(const std::string& path) {
  std::string error;
  std::optional<qbe::SnapshotFileInfo> info =
      qbe::ReadSnapshotInfo(path, &error);
  if (!info.has_value()) {
    std::fprintf(stderr, "FAIL: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s: version %u, %.1f MB, page size %u, %zu sections\n",
              path.c_str(), info->version,
              static_cast<double>(info->file_bytes) / 1e6, info->page_size,
              info->sections.size());
  std::printf("%-22s %6s %6s %12s %12s %12s  %s\n", "section", "a", "b",
              "offset", "bytes", "elems", "checksum");
  for (const qbe::SnapshotSectionInfo& s : info->sections) {
    std::printf("%-22s %6u %6u %12llu %12llu %12llu  %016llx\n",
                s.name.c_str(), s.a, s.b,
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.bytes),
                static_cast<unsigned long long>(s.elem_count),
                static_cast<unsigned long long>(s.checksum));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "build") return Build(argc - 2, argv + 2);
  if (command == "compact") return Compact(argc - 2, argv + 2);
  if ((command == "verify" || command == "info") && argc == 3) {
    return command == "verify" ? Verify(argv[2]) : Info(argv[2]);
  }
  PrintUsage();
  return 2;
}
