// qbe_loadgen — network load generator for the wire protocol (DESIGN.md
// §16); the client side of `qbe_serve --listen`.
//
//   qbe_loadgen --port P [--host 127.0.0.1] [--port-file FILE]
//               [--requests FILE] [--connections N] [--pipeline D]
//               [--repeat R] [--rate RPS] [--timeout-ms T] [--json]
//
// Closed loop (default): N connections each replay the workload R times,
// keeping up to D requests pipelined on the wire — offered load tracks
// service capacity. With --rate RPS the generator runs open loop instead:
// sends are paced on a fixed schedule split evenly across connections,
// regardless of how fast replies come back — queueing delay shows up in
// the latencies instead of throttling the offered load.
//
// Latency is measured per request, send to reply, on the generator's
// clock. The summary reports exact (not bucketed) quantiles; --json emits
// the same numbers as one JSON object on stdout for scripts and CI.
//
// The workload file uses the qbe_serve --requests format (one example
// table per line; see service/workload.h). Without --requests a built-in
// retailer workload (the paper's Figure 2 ET and sub-tables) is replayed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "service/workload.h"
#include "util/stopwatch.h"

namespace {

struct LoadgenArgs {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string port_file;
  std::string requests_file;
  int connections = 1;
  int pipeline = 1;
  int repeat = 1;
  double rate = 0.0;  // > 0: open loop at this many requests/second total
  long long timeout_ms = 0;
  bool json = false;
  bool show_usage = false;
  std::string error;

  bool ok() const { return error.empty(); }
};

const char kUsage[] =
    "usage: qbe_loadgen --port P [--host H] [--port-file FILE]\n"
    "                   [--requests FILE] [--connections N] [--pipeline D]\n"
    "                   [--repeat R] [--rate RPS] [--timeout-ms T] [--json]\n";

bool ParseLong(const char* s, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

bool ParseDouble(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

LoadgenArgs ParseLoadgenArgs(int argc, const char* const* argv) {
  LoadgenArgs args;
  auto fail = [&](const std::string& why) {
    if (args.error.empty()) args.error = why;
  };
  for (int i = 1; i < argc && args.ok(); ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        fail("missing value for " + arg);
        return nullptr;
      }
      return argv[++i];
    };
    auto long_value = [&](long long lo, long long hi) -> long long {
      const char* v = value();
      long long n = 0;
      if (v == nullptr) return 0;
      if (!ParseLong(v, &n) || n < lo || n > hi) {
        fail("bad value for " + arg + ": " + v);
        return 0;
      }
      return n;
    };
    if (arg == "--help" || arg == "-h") {
      args.show_usage = true;
    } else if (arg == "--host") {
      if (const char* v = value()) args.host = v;
    } else if (arg == "--port") {
      args.port = static_cast<int>(long_value(1, 65535));
    } else if (arg == "--port-file") {
      if (const char* v = value()) args.port_file = v;
    } else if (arg == "--requests") {
      if (const char* v = value()) args.requests_file = v;
    } else if (arg == "--connections") {
      args.connections = static_cast<int>(long_value(1, 4096));
    } else if (arg == "--pipeline") {
      args.pipeline = static_cast<int>(long_value(1, 1024));
    } else if (arg == "--repeat") {
      args.repeat = static_cast<int>(long_value(1, 1'000'000));
    } else if (arg == "--rate") {
      const char* v = value();
      double d = 0.0;
      if (v != nullptr && (!ParseDouble(v, &d) || d <= 0.0 || d > 1e9)) {
        fail("bad value for " + arg + ": " + std::string(v));
      }
      args.rate = d;
    } else if (arg == "--timeout-ms") {
      args.timeout_ms = long_value(0, 86'400'000);
    } else if (arg == "--json") {
      args.json = true;
    } else {
      fail("unknown flag " + arg);
    }
  }
  if (args.ok() && args.port < 0 && args.port_file.empty()) {
    fail("--port (or --port-file) is required");
  }
  return args;
}

/// Per-thread tallies, merged after the run.
struct ConnStats {
  std::vector<double> latencies;  // seconds, completed requests only
  long long ok = 0;
  long long rejected = 0;
  long long timed_out = 0;
  long long other = 0;       // failed / shutdown statuses
  long long wire_errors = 0; // typed kError frames
  std::string transport_error;  // first socket-level failure, "" if none
};

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Tally(const qbe::ClientReply& reply, double latency, ConnStats* stats) {
  stats->latencies.push_back(latency);
  if (reply.is_error) {
    stats->wire_errors++;
    return;
  }
  if (reply.response.status == "ok") {
    stats->ok++;
  } else if (reply.response.status == "rejected") {
    stats->rejected++;
  } else if (reply.response.status == "timed_out") {
    stats->timed_out++;
  } else {
    stats->other++;
  }
}

/// Closed loop: at most `pipeline` requests outstanding; the reply stream
/// is FIFO (the server guarantees per-connection request order), so send
/// timestamps queue up and pop with each reply.
void RunClosedLoop(const LoadgenArgs& args,
                   const std::vector<qbe::WireRequest>& workload,
                   int conn_index, ConnStats* stats) {
  qbe::NetClient client(args.host, static_cast<uint16_t>(args.port));
  if (!client.ok()) {
    stats->transport_error = client.error();
    return;
  }
  qbe::Stopwatch clock;
  std::vector<double> send_times;
  size_t head = 0;  // first unanswered send time
  uint64_t id = static_cast<uint64_t>(conn_index) << 32;
  for (int r = 0; r < args.repeat; ++r) {
    for (size_t q = 0; q < workload.size(); ++q) {
      while (send_times.size() - head >=
             static_cast<size_t>(args.pipeline)) {
        qbe::ClientReply reply;
        if (!client.Receive(&reply)) {
          stats->transport_error = client.error();
          return;
        }
        Tally(reply, clock.ElapsedSeconds() - send_times[head++], stats);
      }
      // Connections start at different workload offsets so concurrent
      // clients exercise different requests at the same instant.
      size_t pick = (q + static_cast<size_t>(conn_index)) % workload.size();
      qbe::WireRequest request = workload[pick];
      request.id = ++id;
      request.deadline_ms = static_cast<uint32_t>(args.timeout_ms);
      if (!client.Send(request)) {
        stats->transport_error = client.error();
        return;
      }
      send_times.push_back(clock.ElapsedSeconds());
    }
  }
  while (head < send_times.size()) {
    qbe::ClientReply reply;
    if (!client.Receive(&reply)) {
      stats->transport_error = client.error();
      return;
    }
    Tally(reply, clock.ElapsedSeconds() - send_times[head++], stats);
  }
}

/// Open loop: sends fire on a fixed schedule (rate / connections each)
/// no matter how fast replies return; replies drain between ticks.
void RunOpenLoop(const LoadgenArgs& args,
                 const std::vector<qbe::WireRequest>& workload,
                 int conn_index, ConnStats* stats) {
  qbe::NetClient client(args.host, static_cast<uint16_t>(args.port));
  if (!client.ok()) {
    stats->transport_error = client.error();
    return;
  }
  const double interval =
      static_cast<double>(args.connections) / args.rate;
  const long long total =
      static_cast<long long>(args.repeat) *
      static_cast<long long>(workload.size());
  qbe::Stopwatch clock;
  std::vector<double> send_times;
  size_t head = 0;
  uint64_t id = static_cast<uint64_t>(conn_index) << 32;
  // Stagger connection phases so the aggregate schedule is uniform.
  double next_send =
      interval * static_cast<double>(conn_index) / args.connections;
  for (long long op = 0; op < total;) {
    double now = clock.ElapsedSeconds();
    if (now >= next_send) {
      size_t pick = static_cast<size_t>(
          (op + static_cast<long long>(conn_index)) %
          static_cast<long long>(workload.size()));
      qbe::WireRequest request = workload[pick];
      request.id = ++id;
      request.deadline_ms = static_cast<uint32_t>(args.timeout_ms);
      if (!client.Send(request)) {
        stats->transport_error = client.error();
        return;
      }
      send_times.push_back(now);
      next_send += interval;
      ++op;
      continue;
    }
    int wait_ms = static_cast<int>((next_send - now) * 1000.0);
    qbe::ClientReply reply;
    bool got = false;
    if (!client.TryReceive(&reply, &got, std::max(wait_ms, 1))) {
      stats->transport_error = client.error();
      return;
    }
    if (got) {
      Tally(reply, clock.ElapsedSeconds() - send_times[head++], stats);
    }
  }
  while (head < send_times.size()) {
    qbe::ClientReply reply;
    if (!client.Receive(&reply)) {
      stats->transport_error = client.error();
      return;
    }
    Tally(reply, clock.ElapsedSeconds() - send_times[head++], stats);
  }
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenArgs args = ParseLoadgenArgs(argc, argv);
  if (args.show_usage) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (!args.ok()) {
    std::fprintf(stderr, "qbe_loadgen: %s\n%s", args.error.c_str(), kUsage);
    return 2;
  }
  if (args.port < 0) {
    std::ifstream pf(args.port_file);
    int port = 0;
    if (!(pf >> port) || port <= 0 || port > 65535) {
      std::fprintf(stderr, "qbe_loadgen: no usable port in %s\n",
                   args.port_file.c_str());
      return 1;
    }
    args.port = port;
  }

  std::vector<qbe::ExampleTable> tables;
  if (!args.requests_file.empty()) {
    std::string error;
    if (!qbe::LoadRequestFile(args.requests_file, &tables, &error)) {
      std::fprintf(stderr, "qbe_loadgen: %s\n", error.c_str());
      return 1;
    }
  } else {
    for (const char* line :
         {"Mike|ThinkPad|Office;Mary|iPad|;Bob||Dropbox",
          "Mike|ThinkPad|Office;Mary|iPad|", "Mike|ThinkPad|Office", "Mike",
          "Mary|iPad", "Bob||Dropbox;Mike|ThinkPad|Office"}) {
      tables.push_back(*qbe::ParseRequestLine(line));
    }
  }
  if (tables.empty()) {
    std::fprintf(stderr, "qbe_loadgen: workload is empty\n");
    return 1;
  }
  std::vector<qbe::WireRequest> workload;
  workload.reserve(tables.size());
  for (const qbe::ExampleTable& et : tables) {
    workload.push_back(qbe::WireRequest::FromExampleTable(et, /*id=*/0));
  }

  qbe::Stopwatch wall;
  std::vector<ConnStats> stats(static_cast<size_t>(args.connections));
  std::vector<std::thread> threads;
  for (int c = 0; c < args.connections; ++c) {
    threads.emplace_back([&, c] {
      if (args.rate > 0.0) {
        RunOpenLoop(args, workload, c, &stats[static_cast<size_t>(c)]);
      } else {
        RunClosedLoop(args, workload, c, &stats[static_cast<size_t>(c)]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double seconds = wall.ElapsedSeconds();

  std::vector<double> latencies;
  long long ok = 0, rejected = 0, timed_out = 0, other = 0, wire_errors = 0;
  int failed_connections = 0;
  for (const ConnStats& s : stats) {
    latencies.insert(latencies.end(), s.latencies.begin(), s.latencies.end());
    ok += s.ok;
    rejected += s.rejected;
    timed_out += s.timed_out;
    other += s.other;
    wire_errors += s.wire_errors;
    if (!s.transport_error.empty()) {
      ++failed_connections;
      std::fprintf(stderr, "qbe_loadgen: connection failed: %s\n",
                   s.transport_error.c_str());
    }
  }
  std::sort(latencies.begin(), latencies.end());
  long long completed = static_cast<long long>(latencies.size());
  double mean = 0.0;
  for (double l : latencies) mean += l;
  if (completed > 0) mean /= static_cast<double>(completed);
  double throughput = seconds > 0 ? completed / seconds : 0.0;
  double p50 = Quantile(latencies, 0.50);
  double p90 = Quantile(latencies, 0.90);
  double p99 = Quantile(latencies, 0.99);
  double max = latencies.empty() ? 0.0 : latencies.back();

  if (args.json) {
    std::printf(
        "{\"mode\":\"%s\",\"connections\":%d,\"pipeline\":%d,"
        "\"rate\":%.3f,\"completed\":%lld,\"ok\":%lld,\"rejected\":%lld,"
        "\"timed_out\":%lld,\"other\":%lld,\"wire_errors\":%lld,"
        "\"failed_connections\":%d,\"seconds\":%.6f,"
        "\"throughput_rps\":%.3f,\"latency_mean_s\":%.6f,"
        "\"latency_p50_s\":%.6f,\"latency_p90_s\":%.6f,"
        "\"latency_p99_s\":%.6f,\"latency_max_s\":%.6f}\n",
        args.rate > 0 ? "open" : "closed", args.connections, args.pipeline,
        args.rate, completed, ok, rejected, timed_out, other, wire_errors,
        failed_connections, seconds, throughput, mean, p50, p90, p99, max);
  } else {
    std::printf(
        "%s loop, %d connections, pipeline %d%s: "
        "%lld completed in %.3fs (%.1f req/s)\n"
        "  %lld ok, %lld rejected, %lld timed out, %lld other, "
        "%lld wire errors\n"
        "  latency mean %.3fms p50 %.3fms p90 %.3fms p99 %.3fms max %.3fms\n",
        args.rate > 0 ? "open" : "closed", args.connections, args.pipeline,
        args.rate > 0
            ? (" at " + std::to_string(args.rate) + " req/s").c_str()
            : "",
        completed, seconds, throughput, ok, rejected, timed_out, other,
        wire_errors, mean * 1e3, p50 * 1e3, p90 * 1e3, p99 * 1e3, max * 1e3);
  }
  return failed_connections > 0 ? 1 : 0;
}
