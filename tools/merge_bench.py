#!/usr/bin/env python3
"""Fold per-PR benchmark artifacts into one perf-trajectory file.

Each CI bench leg publishes a machine-readable ``results/BENCH_PR<n>.json``
whose shape is owned by that PR's bench (google-benchmark dump, snapshot
cold-start summary, service throughput table, ...). This script folds every
``BENCH_PR*.json`` under --results-dir into ``BENCH_TRAJECTORY.json``: one
entry per PR, ordered by PR number, each reduced to its scalar headline
metrics so perf over time can be charted from a single small file without
knowing every per-PR schema.

Headline extraction is schema-agnostic: top-level scalars are kept as-is,
scalars one dict level down are kept as ``<section>.<key>``, and lists
contribute only their length as ``<key>_count``. Deterministic: running it
twice over the same inputs produces byte-identical output.

Usage:
    python3 tools/merge_bench.py [--results-dir results] [--out ...]
"""

import argparse
import glob
import json
import os
import re
import sys

SCALARS = (int, float, str, bool)


def headline_metrics(doc):
    """Scalar summary of one bench artifact (see module docstring)."""
    metrics = {}
    if not isinstance(doc, dict):
        return {"entries_count": len(doc)} if isinstance(doc, list) else {}
    for key, value in doc.items():
        if isinstance(value, SCALARS):
            metrics[key] = value
        elif isinstance(value, list):
            metrics[key + "_count"] = len(value)
        elif isinstance(value, dict):
            for sub_key, sub_value in value.items():
                if isinstance(sub_value, SCALARS):
                    metrics[key + "." + sub_key] = sub_value
    return metrics


def fold(results_dir):
    entries = []
    pattern = os.path.join(results_dir, "BENCH_PR*.json")
    for path in sorted(glob.glob(pattern)):
        name = os.path.basename(path)
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", name)
        if match is None:
            print(f"skipping {name}: not BENCH_PR<n>.json", file=sys.stderr)
            continue
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"skipping {name}: {e}", file=sys.stderr)
            continue
        entries.append({
            "pr": int(match.group(1)),
            "source": name,
            "metrics": headline_metrics(doc),
        })
    entries.sort(key=lambda e: e["pr"])
    return {"schema": "qbe-bench-trajectory-v1", "entries": entries}


def main():
    parser = argparse.ArgumentParser(
        description="Fold results/BENCH_PR*.json into BENCH_TRAJECTORY.json")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--out", default=None,
                        help="output path (default: <results-dir>/"
                             "BENCH_TRAJECTORY.json)")
    args = parser.parse_args()
    out_path = args.out or os.path.join(args.results_dir,
                                        "BENCH_TRAJECTORY.json")
    if not os.path.isdir(args.results_dir):
        # A fresh checkout has no results yet; still write a valid (empty)
        # trajectory so downstream chart tooling always has a file to read.
        print(f"warning: no results dir {args.results_dir}", file=sys.stderr)
    trajectory = fold(args.results_dir)
    if not trajectory["entries"]:
        print(f"warning: no BENCH_PR*.json found under {args.results_dir}; "
              "writing an empty trajectory", file=sys.stderr)
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as f:
        json.dump(trajectory, f, indent=2, sort_keys=True)
        f.write("\n")
    prs = ", ".join(str(e["pr"]) for e in trajectory["entries"])
    print(f"wrote {out_path} (PRs: {prs})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
