// qbe_serve — driver for the concurrent DiscoveryService. Two modes:
//
//  - batch replay (default): replays a workload of example-table requests
//    over N client threads against one shared service and prints the
//    metrics dump;
//  - network serving (--listen PORT): serves the binary wire protocol
//    (DESIGN.md §16) on loopback TCP until SIGINT/SIGTERM, then drains
//    gracefully. `qbe_loadgen` is the matching client. --listen 0 binds an
//    ephemeral port; --port-file tells scripts where it landed.
//
//   qbe_serve [--dataset retailer|imdb] [--scale S]
//             [--snapshot FILE.qbes] [--wal FILE.qbel]
//             [--requests FILE] [--repeat R]
//             [--clients N] [--workers N] [--queue-depth N]
//             [--append-mix P] [--compact-after N] [--compact-snapshot FILE]
//             [--timeout-ms T] [--algorithm verifyall|simpleprune|filter|weave]
//             [--listen PORT] [--port-file FILE] [--max-conns N]
//             [--idle-timeout-ms T]
//             [--metrics-port P] [--trace-sample F] [--slow-query-ms T]
//             [--trace-out FILE.json]
//             [--shards N] [--shard-mode hash|range] [--shard-seed S]
//             [--shardset FILE.shardset]
//
// Sharded mode (DESIGN.md §15): --shards N splits the built dataset into N
// FK-co-located shards at startup; --shardset serves pre-split per-shard
// snapshots written by `qbe_shard split`. Discovery results are
// bit-identical to unsharded serving; appends route to the shard holding
// their FK relatives (cross-shard conflicts are rejected).
//
// Flags are strict: an unknown flag or a missing/out-of-range value is
// rejected with a message naming it (see service/serve_args.h).
//
// With --snapshot, the database is mmap'd from a `.qbes` snapshot written
// by `qbe_snapshot build` (zero-copy cold start) instead of being generated;
// a corrupt or incompatible snapshot is reported and the server falls back
// to generating the requested dataset.
//
// Live ingestion (DESIGN.md §12): --wal replays and arms an append-only log
// so ingested rows survive restarts; --append-mix P makes each client turn
// P% of its operations into row appends (synthetic rows, unique PKs) —
// in-flight discoveries keep their pinned epoch while writers proceed;
// --compact-after N folds the overlay into a fresh base (and refreshes
// --compact-snapshot, default WAL path + ".qbes") every N logged ops.
//
// Observability (DESIGN.md §13): --trace-sample F traces that fraction of
// requests (deterministic sampling); --metrics-port P serves GET /metrics
// (Prometheus text) and GET /traces (Chrome trace JSON) on loopback for
// the run's duration; --slow-query-ms T logs one JSON line per request
// slower than T ms; --trace-out FILE writes the retained traces as Chrome
// trace JSON at exit (load in chrome://tracing or Perfetto).
//
// Request file format: one request per line; rows separated by ';', cells
// by '|' (same cell syntax as qbe_cli --row). Example line for Figure 2:
//
//   Mike|ThinkPad|Office;Mary|iPad|;Bob||Dropbox
//
// Without --requests, a built-in workload is used: the Figure 2 ET and its
// sub-tables for the retailer, EtSource-sampled tables for imdb.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/example_table.h"
#include "datagen/et_gen.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "net/server.h"
#include "obs/metrics_http.h"
#include "schema/schema_graph.h"
#include "service/discovery_service.h"
#include "service/serve_args.h"
#include "service/workload.h"
#include "shard/partition.h"
#include "util/stopwatch.h"

namespace {

std::atomic<bool> g_shutdown_requested{false};

void HandleShutdownSignal(int /*sig*/) { g_shutdown_requested.store(true); }

std::vector<qbe::ExampleTable> BuiltinRetailerWorkload() {
  std::vector<qbe::ExampleTable> requests;
  requests.push_back(qbe::MakeFigure2ExampleTable());
  for (const char* line :
       {"Mike|ThinkPad|Office;Mary|iPad|", "Mike|ThinkPad|Office", "Mike",
        "Mary|iPad", "Bob||Dropbox;Mike|ThinkPad|Office"}) {
    requests.push_back(*qbe::ParseRequestLine(line));
  }
  return requests;
}

std::vector<qbe::ExampleTable> BuiltinImdbWorkload(const qbe::Database& db) {
  qbe::SchemaGraph graph(db);
  qbe::Executor exec(db, graph);
  qbe::EtSource source(db, graph, exec, /*seed=*/7);
  if (source.num_matrices() == 0) {
    // Too small or text-poor to sample from (e.g. a retailer snapshot);
    // the fixed Figure 2 workload at least exercises the serving path.
    std::fprintf(stderr,
                 "warning: database too small to sample a workload from; "
                 "using the built-in retailer requests\n");
    return BuiltinRetailerWorkload();
  }
  qbe::EtParams params;
  params.m = 2;
  params.n = 2;
  params.s = 0.0;
  return source.SampleMany(params, /*count=*/8, /*seed=*/11);
}

}  // namespace

int main(int argc, char** argv) {
  qbe::ServeArgs args = qbe::ParseServeArgs(argc, argv);
  if (args.show_usage) {
    std::printf("%s", qbe::ServeUsage().c_str());
    return 0;
  }
  if (!args.ok()) {
    std::fprintf(stderr, "qbe_serve: %s\n%s", args.error.c_str(),
                 qbe::ServeUsage().c_str());
    return 2;
  }

  qbe::ServiceOptions service_options;
  service_options.num_workers = args.workers;
  service_options.max_queue_depth = args.queue_depth;
  service_options.default_timeout = std::chrono::milliseconds(args.timeout_ms);
  service_options.wal_path = args.wal_path;
  service_options.compact_after_ops = args.compact_after;
  service_options.compact_snapshot_path = args.compact_snapshot;
  service_options.discovery.verify.threads = args.verify_threads;
  service_options.discovery.algorithm =
      *qbe::ParseAlgorithmName(args.algorithm);
  service_options.trace_sample = args.trace_sample;
  service_options.slow_query_ms = args.slow_query_ms;
  if (!service_options.wal_path.empty() &&
      service_options.compact_snapshot_path.empty()) {
    // A WAL-armed compaction must persist the merged state somewhere.
    service_options.compact_snapshot_path = service_options.wal_path + ".qbes";
  }

  bool from_snapshot = false;
  std::optional<qbe::Database> opened;
  if (!args.snapshot_path.empty()) {
    qbe::Stopwatch open_timer;
    std::string snapshot_error;
    opened = qbe::Database::OpenSnapshot(args.snapshot_path, &snapshot_error);
    if (opened.has_value()) {
      from_snapshot = true;
      std::printf("opened snapshot %s in %.3fs (%.1f MB mapped)\n",
                  args.snapshot_path.c_str(), open_timer.ElapsedSeconds(),
                  static_cast<double>(opened->MappedBytes()) / 1e6);
    } else {
      std::fprintf(stderr,
                   "warning: cannot start from snapshot: %s\n"
                   "warning: falling back to generating dataset %s\n",
                   snapshot_error.c_str(), args.dataset.c_str());
    }
  }
  qbe::Database db =
      opened.has_value()
          ? std::move(*opened)
          : (args.dataset == "retailer"
                 ? qbe::MakeRetailerDatabase()
                 : qbe::MakeImdbLikeDatabase({args.scale, 20140622}));
  std::printf("dataset=%s: %d relations, %zu foreign keys\n",
              from_snapshot ? args.snapshot_path.c_str()
                            : args.dataset.c_str(),
              db.num_relations(), db.foreign_keys().size());

  // Network mode serves whatever clients send; it needs no replay workload.
  const bool listen_mode = args.listen_port >= 0;
  std::vector<qbe::ExampleTable> requests;
  if (!args.requests_file.empty()) {
    std::string workload_error;
    if (!qbe::LoadRequestFile(args.requests_file, &requests,
                              &workload_error)) {
      std::fprintf(stderr, "qbe_serve: %s\n", workload_error.c_str());
      return 1;
    }
  } else if (listen_mode) {
    // No workload needed.
  } else if (args.dataset == "retailer" && !from_snapshot) {
    requests = BuiltinRetailerWorkload();
  } else {
    // Snapshots can hold any dataset; sample ETs from the actual contents.
    requests = BuiltinImdbWorkload(db);
  }
  if (requests.empty() && !listen_mode) {
    std::fprintf(stderr, "no requests to replay\n");
    return 1;
  }

  // Sharded startup: split the in-memory database now, or open per-shard
  // snapshots named by a qbe_shard manifest. Either way the service gets a
  // vector of FK-co-located shard databases.
  std::vector<qbe::Database> shard_dbs;
  if (!args.shardset_path.empty()) {
    std::string shard_error;
    std::optional<qbe::ShardSet> set =
        qbe::ReadShardSet(args.shardset_path, &shard_error);
    if (!set.has_value()) {
      std::fprintf(stderr, "qbe_serve: %s\n", shard_error.c_str());
      return 1;
    }
    for (const std::string& path : set->paths) {
      std::optional<qbe::Database> shard =
          qbe::Database::OpenSnapshot(path, &shard_error);
      if (!shard.has_value()) {
        std::fprintf(stderr, "qbe_serve: %s: %s\n", path.c_str(),
                     shard_error.c_str());
        return 1;
      }
      shard_dbs.push_back(std::move(*shard));
    }
    service_options.shard_seed = set->seed;
    std::printf("shardset %s: %d shards (%s)\n", args.shardset_path.c_str(),
                set->num_shards(), qbe::PartitionModeName(set->mode));
  } else if (args.shards > 1) {
    qbe::PartitionOptions poptions;
    poptions.num_shards = args.shards;
    poptions.mode = *qbe::ParsePartitionMode(args.shard_mode);
    poptions.seed = static_cast<uint64_t>(args.shard_seed);
    qbe::PartitionPlan plan = qbe::ComputePartitionPlan(db, poptions);
    shard_dbs = qbe::SplitDatabase(db, plan);
    service_options.shard_seed = poptions.seed;
    std::printf("sharded %s into %d shards (%s): rows per shard [",
                args.dataset.c_str(), args.shards, args.shard_mode.c_str());
    const std::vector<uint64_t> rows = plan.RowsPerShard();
    for (size_t s = 0; s < rows.size(); ++s) {
      std::printf("%s%llu", s == 0 ? "" : " ",
                  static_cast<unsigned long long>(rows[s]));
    }
    std::printf("]\n");
  } else {
    shard_dbs.push_back(std::move(db));
  }

  // Catalog sketch for synthetic appends, captured before the move: the
  // base reference behind service.db() is not stable across compactions.
  // Read from the data actually served (a shardset's catalog can differ
  // from the generated dataset's).
  std::vector<std::vector<qbe::ColumnType>> append_schema;
  for (int rel = 0; rel < shard_dbs[0].num_relations(); ++rel) {
    std::vector<qbe::ColumnType> cols;
    for (const auto& def : shard_dbs[0].relation(rel).columns()) {
      cols.push_back(def.type);
    }
    append_schema.push_back(std::move(cols));
  }

  qbe::DiscoveryService service(std::move(shard_dbs), service_options);
  if (!service.wal_error().empty()) {
    std::fprintf(stderr, "warning: WAL not attached: %s\n",
                 service.wal_error().c_str());
  }

  std::unique_ptr<qbe::MetricsHttpServer> http;
  if (args.metrics_port >= 0) {
    http = std::make_unique<qbe::MetricsHttpServer>(
        static_cast<uint16_t>(args.metrics_port),
        [&service](const std::string& path,
                   std::string* content_type) -> std::string {
          if (path == "/metrics") {
            *content_type = "text/plain; version=0.0.4";
            return service.PrometheusMetrics();
          }
          if (path == "/traces") {
            *content_type = "application/json";
            return service.ChromeTraces();
          }
          return {};  // 404
        });
    if (http->ok()) {
      std::printf("metrics on http://127.0.0.1:%u/metrics (and /traces)\n",
                  http->port());
    } else {
      std::fprintf(stderr, "warning: metrics endpoint not started: %s\n",
                   http->error().c_str());
    }
  }

  if (listen_mode) {
    qbe::NetServerOptions net_options;
    net_options.port = static_cast<uint16_t>(args.listen_port);
    net_options.max_connections = args.max_conns;
    net_options.idle_timeout_ms = static_cast<int>(args.idle_timeout_ms);
    net_options.trace_sample = args.trace_sample;
    qbe::NetServer server(&service, net_options);
    if (!server.ok()) {
      std::fprintf(stderr, "qbe_serve: cannot listen on port %d: %s\n",
                   args.listen_port, server.error().c_str());
      return 1;
    }
    if (!args.port_file.empty()) {
      std::ofstream pf(args.port_file);
      pf << server.port() << "\n";
      if (!pf) {
        std::fprintf(stderr, "qbe_serve: failed to write %s\n",
                     args.port_file.c_str());
        return 1;
      }
    }
    std::printf("serving wire protocol on 127.0.0.1:%u (Ctrl-C to stop)\n",
                server.port());
    std::fflush(stdout);
    std::signal(SIGINT, HandleShutdownSignal);
    std::signal(SIGTERM, HandleShutdownSignal);
    while (!g_shutdown_requested.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("shutdown requested; draining\n");
    server.Stop();
    std::string flush_error;
    if (!service.Flush(&flush_error)) {
      std::fprintf(stderr, "warning: WAL flush failed: %s\n",
                   flush_error.c_str());
    }
    if (http != nullptr) http->Stop();
    if (!args.trace_out.empty()) {
      // Request traces plus the server's per-connection net traces.
      std::vector<qbe::Trace> traces = service.RecentTraces();
      for (qbe::Trace& t : server.RecentNetTraces()) {
        traces.push_back(std::move(t));
      }
      std::ofstream out(args.trace_out);
      if (out) {
        out << qbe::ChromeTraceJson(traces);
        std::printf("wrote %zu traces to %s\n", traces.size(),
                    args.trace_out.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", args.trace_out.c_str());
      }
    }
    service.Shutdown();
    std::printf("%s", service.MetricsDump().c_str());
    return 0;
  }

  // Each client replays the whole request list `repeat` times, offset by
  // its id so clients hit different requests at the same instant. With
  // --append-mix P, every 100 operations P of them are row appends
  // (unique ids per client, so admission never rejects a duplicate PK).
  qbe::Stopwatch wall;
  std::vector<std::thread> client_threads;
  std::atomic<long long> ok{0}, rejected{0}, timed_out{0}, other{0};
  std::atomic<long long> appended{0}, append_failed{0};
  for (int c = 0; c < args.clients; ++c) {
    client_threads.emplace_back([&, c] {
      long long op = 0;
      for (int r = 0; r < args.repeat; ++r) {
        for (size_t q = 0; q < requests.size(); ++q, ++op) {
          if (args.append_mix > 0 && op % 100 < args.append_mix) {
            int rel = static_cast<int>(op % append_schema.size());
            long long uniq = 1'000'000'000LL +
                             static_cast<long long>(c) * 10'000'000LL + op;
            std::vector<qbe::Value> values;
            for (qbe::ColumnType type : append_schema[rel]) {
              if (type == qbe::ColumnType::kId) {
                values.emplace_back(static_cast<int64_t>(uniq));
              } else {
                values.emplace_back("live ingest row " +
                                    std::to_string(uniq));
              }
            }
            std::string error;
            if (service.Append(rel, std::move(values), &error)) {
              appended.fetch_add(1, std::memory_order_relaxed);
            } else {
              append_failed.fetch_add(1, std::memory_order_relaxed);
            }
            continue;
          }
          size_t pick = (q + static_cast<size_t>(c)) % requests.size();
          qbe::ServiceResponse response = service.Discover(requests[pick]);
          switch (response.status) {
            case qbe::RequestStatus::kOk:
              ok.fetch_add(1, std::memory_order_relaxed);
              break;
            case qbe::RequestStatus::kRejected:
              rejected.fetch_add(1, std::memory_order_relaxed);
              break;
            case qbe::RequestStatus::kTimedOut:
              timed_out.fetch_add(1, std::memory_order_relaxed);
              break;
            default:
              other.fetch_add(1, std::memory_order_relaxed);
              break;
          }
        }
      }
    });
  }
  for (std::thread& t : client_threads) t.join();
  double seconds = wall.ElapsedSeconds();
  std::string flush_error;
  if (!service.Flush(&flush_error)) {
    std::fprintf(stderr, "warning: WAL flush failed: %s\n",
                 flush_error.c_str());
  }
  if (http != nullptr) http->Stop();
  if (!args.trace_out.empty()) {
    std::ofstream out(args.trace_out);
    if (out) {
      out << service.ChromeTraces();
      std::printf("wrote %zu traces to %s\n", service.RecentTraces().size(),
                  args.trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", args.trace_out.c_str());
    }
  }
  service.Shutdown();

  long long total = ok + rejected + timed_out + other;
  std::printf(
      "replayed %lld requests from %d clients in %.3fs (%.1f req/s): "
      "%lld ok, %lld rejected, %lld timed out, %lld other\n",
      total, args.clients, seconds,
      seconds > 0 ? static_cast<double>(total) / seconds : 0.0,
      static_cast<long long>(ok), static_cast<long long>(rejected),
      static_cast<long long>(timed_out), static_cast<long long>(other));
  if (args.append_mix > 0) {
    unsigned long long epoch_sum = 0;
    size_t overlay_rows = 0;
    for (int s = 0; s < service.num_shards(); ++s) {
      epoch_sum += service.live_shard(s).epoch();
      overlay_rows += service.live_shard(s).delta_rows();
    }
    std::printf("appended %lld rows (%lld rejected), final epoch %llu, "
                "%zu overlay rows\n",
                static_cast<long long>(appended),
                static_cast<long long>(append_failed), epoch_sum,
                overlay_rows);
  }
  std::printf("%s", service.MetricsDump().c_str());
  return 0;
}
